//! Lock-order cycle detection (`AD0200`).
//!
//! The serve runtime holds several locks with overlapping lifetimes
//! (worker handles, the condition cache, the stats registry, the request
//! queue). Two threads that acquire the same pair of locks in opposite
//! orders deadlock, and nothing in the type system prevents it. This
//! pass extracts a conservative *lock-order graph* from the token stream
//! and reports every cycle.
//!
//! # Model
//!
//! For each function the pass simulates the body token-by-token:
//!
//! - An **acquisition** is `.lock()`, `.read()`, or `.write()` with an
//!   *empty* argument list (the emptiness requirement keeps
//!   `io::Read::read(&mut buf)` and friends out of the graph). The lock
//!   identity is the last field/variable name before the method —
//!   `self.state.lock()` and `shared.state.lock()` are both lock
//!   `state` — namespaced by crate so unrelated crates' `state` fields
//!   are never conflated.
//! - A call to a workspace function whose return type names
//!   `MutexGuard` / `RwLockReadGuard` / `RwLockWriteGuard` is also an
//!   acquisition; the identity comes from the call's first argument
//!   (this models poison-recovery helpers like `lock_cache(&cache)`).
//! - A guard bound by `let g = …` is held until its scope's closing
//!   brace or an explicit `drop(g)`; an unbound (temporary) guard is
//!   released at the next `;` or `,`.
//! - While any guard is held, acquiring another lock adds the edge
//!   *held → acquired*. Calling a free function adds edges from every
//!   held guard to every lock the callee (transitively) acquires, with
//!   the callee's parameter-named locks substituted by the caller's
//!   argument names.
//!
//! An edge `a → b` means "some thread holds `a` while taking `b`"; a
//! cycle in the graph (including a self-loop, i.e. re-acquiring a
//! non-reentrant lock) is a potential deadlock and renders as one
//! diagnostic per strongly connected component.
//!
//! # Soundness limits (documented, deliberate)
//!
//! - Propagation follows *free-function* call syntax only. Method calls
//!   are not resolved (no type information), so a lock taken inside a
//!   method reached through `self.helper()` is invisible. This
//!   under-approximation is what keeps ubiquitous method names (`len`,
//!   `get`) from wiring the whole workspace together with false edges.
//! - Lock identity is a field *name*, not a memory location: two
//!   different `Mutex` fields called `state` in one crate alias to one
//!   node. Name locks distinctly.
//! - Temporary guards chained in one statement (`m.lock().x, n.lock().y`)
//!   release at the separating comma, slightly earlier than real drop
//!   order; this under-approximation avoids false cycles in struct
//!   literals that read several locks.

use crate::diag::{DiagCode, Report};
use crate::source_lint::{load_workspace, SourceFile};
use crate::token::{self, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Methods whose empty-argument call on a receiver acquires a guard.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Return-type markers of guard-returning helper functions.
const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// A lock named at extraction time: either one of the enclosing
/// function's parameters (resolved at each callsite) or a concrete
/// field/variable name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum LockRef {
    Param(usize),
    Named(String),
}

/// One guard currently held during the body walk.
struct Held {
    lock: LockRef,
    /// Brace depth at acquisition; let-bound guards die when the walk
    /// drops below it.
    depth: i32,
    /// `Some(name)` for `let name = …` bindings (released by `drop(name)`
    /// or scope end), `None` for temporaries (released at `;` / `,`).
    bound: Option<String>,
}

/// What one function does with locks, before callsite resolution.
#[derive(Debug, Default)]
struct FnSummary {
    /// Locks acquired anywhere in the body, each with one example site.
    acquires: Vec<(LockRef, String)>,
    /// Edges `held → acquired` observed directly in the body.
    edges: Vec<(LockRef, LockRef, String)>,
    /// Free-function calls: callee name, per-argument lock names, locks
    /// held at the call, and the callsite.
    calls: Vec<(String, Vec<String>, Vec<LockRef>, String)>,
}

/// Scans the workspace rooted at `root` and reports every cycle in the
/// lock-order graph as `AD0200`.
#[must_use]
pub fn lint_lock_order(root: &Path) -> Report {
    let files = load_workspace(root);

    // Pass 1: which functions return guards (by name, workspace-wide).
    let mut guard_fns: BTreeSet<String> = BTreeSet::new();
    for file in &files {
        for f in &file.fns {
            let names_guard = (f.ret.0..f.ret.1).any(|ti| {
                file.tokens[ti].kind == TokenKind::Ident && GUARD_TYPES.contains(&file.text(ti))
            });
            if names_guard {
                guard_fns.insert(f.name.clone());
            }
        }
    }

    // Pass 2: per-function summaries.
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut params: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in &files {
        for f in &file.fns {
            if f.body.0 >= f.body.1 {
                continue;
            }
            let key = format!("{}::{}", file.crate_name, f.name);
            let summary = summarize_fn(file, f, &guard_fns);
            params.insert(key.clone(), f.params.clone());
            summaries.insert(key, summary);
        }
    }

    // Resolve a callee lock through the callsite's argument names: the
    // callee's `Param(i)` becomes whatever name the caller passed.
    let resolve = |lock: &LockRef, args: &[String], crate_name: &str| -> Option<String> {
        match lock {
            LockRef::Named(n) => Some(format!("{crate_name}::{n}")),
            LockRef::Param(i) => args.get(*i).map(|a| format!("{crate_name}::{a}")),
        }
    };

    // Fixpoint: locks each function (transitively) acquires, as fully
    // resolved names. Callees are looked up in the caller's crate first,
    // then anywhere in the workspace.
    let lookup = |caller_key: &str, callee: &str| -> Option<String> {
        let crate_name = caller_key.split("::").next().unwrap_or("");
        let same = format!("{crate_name}::{callee}");
        if summaries.contains_key(&same) {
            return Some(same);
        }
        summaries.keys().find(|k| k.ends_with(&format!("::{callee}"))).cloned()
    };
    let mut reach: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (key, s) in &summaries {
        let crate_name = key.split("::").next().unwrap_or("");
        let own: BTreeSet<String> = s
            .acquires
            .iter()
            .filter_map(|(l, _)| {
                let p = params.get(key).map(Vec::as_slice).unwrap_or(&[]);
                match l {
                    LockRef::Named(n) => Some(format!("{crate_name}::{n}")),
                    LockRef::Param(i) => p.get(*i).map(|n| format!("{crate_name}::{n}")),
                }
            })
            .collect();
        reach.insert(key.clone(), own);
    }
    loop {
        let mut changed = false;
        for (key, s) in &summaries {
            let mut add: BTreeSet<String> = BTreeSet::new();
            let crate_name = key.split("::").next().unwrap_or("");
            for (callee, args, _, _) in &s.calls {
                let Some(callee_key) = lookup(key, callee) else { continue };
                let callee_params =
                    params.get(&callee_key).map(Vec::as_slice).unwrap_or(&[]).to_vec();
                for resolved in reach.get(&callee_key).cloned().unwrap_or_default() {
                    // A callee lock named after one of its params maps to
                    // the callsite argument; everything else passes through.
                    let bare = resolved.split("::").nth(1).unwrap_or(&resolved);
                    let mapped = callee_params
                        .iter()
                        .position(|p| p == bare)
                        .and_then(|i| args.get(i))
                        .map_or(resolved.clone(), |a| format!("{crate_name}::{a}"));
                    add.insert(mapped);
                }
            }
            let entry = reach.entry(key.clone()).or_default();
            for lock in add {
                changed |= entry.insert(lock);
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set on resolved lock names.
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    for (key, s) in &summaries {
        let crate_name = key.split("::").next().unwrap_or("");
        let p = params.get(key).cloned().unwrap_or_default();
        let name_of = |l: &LockRef| -> Option<String> {
            match l {
                LockRef::Named(n) => Some(format!("{crate_name}::{n}")),
                LockRef::Param(i) => p.get(*i).map(|n| format!("{crate_name}::{n}")),
            }
        };
        for (held, taken, site) in &s.edges {
            if let (Some(a), Some(b)) = (name_of(held), name_of(taken)) {
                edges.entry((a, b)).or_insert_with(|| site.clone());
            }
        }
        for (callee, args, held_at_call, site) in &s.calls {
            if held_at_call.is_empty() {
                continue;
            }
            let Some(callee_key) = lookup(key, callee) else { continue };
            let callee_params = params.get(&callee_key).cloned().unwrap_or_default();
            for resolved in reach.get(&callee_key).cloned().unwrap_or_default() {
                let bare = resolved.split("::").nth(1).unwrap_or(&resolved).to_string();
                let mapped = callee_params
                    .iter()
                    .position(|pn| *pn == bare)
                    .and_then(|i| resolve(&LockRef::Param(i), args, crate_name))
                    .unwrap_or(resolved);
                for held in held_at_call {
                    if let Some(a) = name_of(held) {
                        if a != mapped {
                            edges.entry((a, mapped.clone())).or_insert_with(|| site.clone());
                        }
                    }
                }
            }
        }
    }

    report_cycles(&edges)
}

/// Walks one function body and records its acquisitions, direct edges,
/// and outgoing free-function calls.
#[allow(clippy::too_many_lines)]
fn summarize_fn(file: &SourceFile, f: &token::FnItem, guard_fns: &BTreeSet<String>) -> FnSummary {
    let mut s = FnSummary::default();
    // Code tokens of the body, minus any nested fn item's span.
    let nested: Vec<(usize, usize)> = file
        .fns
        .iter()
        .filter(|g| g.start > f.body.0 && g.body.1 <= f.body.1 && g.body.0 < g.body.1)
        .map(|g| (g.start, g.body.1))
        .collect();
    let body: Vec<usize> = token::code_indices(&file.tokens)
        .into_iter()
        .filter(|&ti| {
            ti > f.body.0
                && ti < f.body.1 - 1
                && !nested.iter().any(|&(s0, e0)| ti >= s0 && ti < e0)
        })
        .collect();

    let param_of = |name: &str| f.params.iter().position(|p| p == name).map(LockRef::Param);
    let lock_ref = |name: &str| param_of(name).unwrap_or_else(|| LockRef::Named(name.to_string()));

    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let acquire = |s: &mut FnSummary,
                   held: &mut Vec<Held>,
                   lock: LockRef,
                   site: String,
                   depth: i32,
                   bound: Option<String>| {
        for h in held.iter() {
            s.edges.push((h.lock.clone(), lock.clone(), site.clone()));
        }
        s.acquires.push((lock.clone(), site.clone()));
        held.push(Held { lock, depth, bound });
    };

    // The `let NAME` (if any) the current statement started with.
    let mut stmt_let: Option<String> = None;
    let mut w = 0usize;
    while w < body.len() {
        let ti = body[w];
        let text = file.text(ti);
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|h| h.depth <= depth || h.bound.is_none());
                stmt_let = None;
            }
            ";" | "," => {
                held.retain(|h| h.bound.is_some());
                if text == ";" {
                    stmt_let = None;
                }
            }
            "let" => {
                let mut k = w + 1;
                if body.get(k).is_some_and(|&j| file.text(j) == "mut") {
                    k += 1;
                }
                stmt_let = body
                    .get(k)
                    .filter(|&&j| file.tokens[j].kind == TokenKind::Ident)
                    .map(|&j| file.text(j).to_string());
            }
            "drop"
                if body.get(w + 1).is_some_and(|&j| file.text(j) == "(")
                    && body.get(w + 3).is_some_and(|&j| file.text(j) == ")") =>
            {
                let victim = file.text(body[w + 2]).to_string();
                held.retain(|h| h.bound.as_deref() != Some(victim.as_str()));
            }
            _ => {}
        }

        // `.lock()` / `.read()` / `.write()` with empty args.
        if text == "."
            && body.get(w + 1).is_some_and(|&j| {
                file.tokens[j].kind == TokenKind::Ident && ACQUIRE_METHODS.contains(&file.text(j))
            })
            && body.get(w + 2).is_some_and(|&j| file.text(j) == "(")
            && body.get(w + 3).is_some_and(|&j| file.text(j) == ")")
        {
            // Lock identity: last ident (or tuple index) before the dot.
            if w > 0 {
                let prev = body[w - 1];
                if matches!(file.tokens[prev].kind, TokenKind::Ident | TokenKind::Num) {
                    let name = file.text(prev).to_string();
                    let site = file.site(file.tokens[body[w + 1]].line);
                    acquire(&mut s, &mut held, lock_ref(&name), site, depth, stmt_let.take());
                    w += 4;
                    continue;
                }
            }
        }

        // Guard-returning helper call (free-function syntax only).
        if file.tokens[ti].kind == TokenKind::Ident
            && guard_fns.contains(text)
            && body.get(w + 1).is_some_and(|&j| file.text(j) == "(")
            && (w == 0 || file.text(body[w - 1]) != ".")
            && (w == 0 || file.text(body[w - 1]) != "fn")
        {
            // Identity: the last ident of the first argument.
            if let Some(close) = match_paren_in(file, &body, w + 1) {
                let mut name: Option<String> = None;
                let mut d = 0i32;
                for &aj in &body[w + 1..=close] {
                    match file.text(aj) {
                        "(" => d += 1,
                        ")" => d -= 1,
                        "," if d == 1 => break,
                        t if file.tokens[aj].kind == TokenKind::Ident
                            || file.tokens[aj].kind == TokenKind::Num =>
                        {
                            name = Some(t.to_string());
                        }
                        _ => {}
                    }
                }
                if let Some(name) = name {
                    let site = file.site(file.tokens[ti].line);
                    acquire(&mut s, &mut held, lock_ref(&name), site, depth, stmt_let.take());
                    w = close + 1;
                    continue;
                }
            }
        }

        // Plain free-function call: record for propagation.
        if file.tokens[ti].kind == TokenKind::Ident
            && !guard_fns.contains(text)
            && body.get(w + 1).is_some_and(|&j| file.text(j) == "(")
            && (w == 0 || !matches!(file.text(body[w - 1]), "." | "fn" | "|" | "&" | "move"))
            && text != "drop"
        {
            if let Some(close) = match_paren_in(file, &body, w + 1) {
                // Last ident of each top-level argument.
                let mut args: Vec<String> = Vec::new();
                let mut current: Option<String> = None;
                let mut d = 0i32;
                for &aj in &body[w + 1..=close] {
                    match file.text(aj) {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                if let Some(cur) = current.take() {
                                    args.push(cur);
                                }
                            }
                        }
                        "," if d == 1 => args.push(current.take().unwrap_or_default()),
                        t if matches!(file.tokens[aj].kind, TokenKind::Ident | TokenKind::Num) => {
                            current = Some(t.to_string());
                        }
                        _ => {}
                    }
                }
                let held_now: Vec<LockRef> = held.iter().map(|h| h.lock.clone()).collect();
                let site = file.site(file.tokens[ti].line);
                s.calls.push((text.to_string(), args, held_now, site));
            }
        }
        w += 1;
    }
    s
}

/// Index (into `body`) of the `)` matching the `(` at `body[open]`.
fn match_paren_in(file: &SourceFile, body: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &ti) in body.iter().enumerate().skip(open) {
        match file.text(ti) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds strongly connected components of the edge set and emits one
/// `AD0200` diagnostic per cyclic SCC (plus one per self-loop).
fn report_cycles(edges: &BTreeMap<(String, String), String>) -> Report {
    let mut report = Report::new();
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let index: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&String> = nodes.iter().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[index[a]].push(index[b]);
    }

    // Self-loops first: re-acquiring a non-reentrant lock.
    for ((a, b), site) in edges {
        if a == b {
            let bare = a.split("::").nth(1).unwrap_or(a);
            report.push(
                DiagCode::LockOrderCycle,
                site.clone(),
                format!(
                    "lock `{bare}` is re-acquired while already held; a std Mutex/RwLock is not \
                     reentrant, so this self-deadlocks"
                ),
            );
        }
    }

    // Iterative Tarjan SCC.
    let n = names.len();
    let mut ids = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if ids[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                ids[v] = next_id;
                low[v] = next_id;
                next_id += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ei < adj[v].len() {
                let u = adj[v][*ei];
                *ei += 1;
                if ids[u] == usize::MAX {
                    call.push((u, 0));
                } else if on_stack[u] {
                    low[v] = low[v].min(ids[u]);
                }
            } else {
                if low[v] == ids[v] {
                    let mut comp = Vec::new();
                    while let Some(u) = stack.pop() {
                        on_stack[u] = false;
                        comp.push(u);
                        if u == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        sccs.push(comp);
                    }
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    for comp in sccs {
        let mut locks: Vec<&str> =
            comp.iter().map(|&i| names[i].split("::").nth(1).unwrap_or(names[i])).collect();
        locks.sort_unstable();
        let comp_set: BTreeSet<usize> = comp.iter().copied().collect();
        let mut sites: Vec<String> = edges
            .iter()
            .filter(|((a, b), _)| {
                a != b && comp_set.contains(&index[a]) && comp_set.contains(&index[b])
            })
            .map(|((a, b), site)| {
                format!(
                    "`{}` held while taking `{}` at {site}",
                    a.split("::").nth(1).unwrap_or(a),
                    b.split("::").nth(1).unwrap_or(b),
                )
            })
            .collect();
        sites.sort();
        let first =
            sites.first().and_then(|s| s.rsplit(" at ").next()).unwrap_or("<unknown>").to_string();
        report.push(
            DiagCode::LockOrderCycle,
            first,
            format!(
                "locks {} are acquired in conflicting orders ({}); two threads interleaving \
                 these paths deadlock — pick one global order",
                locks.iter().map(|l| format!("`{l}`")).collect::<Vec<_>>().join(", "),
                sites.join("; "),
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    #[test]
    fn opposite_order_in_two_functions_is_a_cycle() {
        let root = std::env::temp_dir().join("aero_lockorder_cycle");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/demo/src/lib.rs"),
            "fn ab(s: &Shared) {\n\
             \x20   let a = s.alpha.lock().unwrap();\n\
             \x20   let b = s.beta.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn ba(s: &Shared) {\n\
             \x20   let b = s.beta.lock().unwrap();\n\
             \x20   let a = s.alpha.lock().unwrap();\n\
             \x20   drop(a); drop(b);\n\
             }\n",
        );
        let report = lint_lock_order(&root);
        assert!(report.has_code(DiagCode::LockOrderCycle), "{}", report.render());
        let msg = &report.diagnostics()[0].message;
        assert!(msg.contains("`alpha`") && msg.contains("`beta`"), "{msg}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn consistent_order_is_clean() {
        let root = std::env::temp_dir().join("aero_lockorder_clean");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/demo/src/lib.rs"),
            "fn one(s: &Shared) {\n\
             \x20   let a = s.alpha.lock().unwrap();\n\
             \x20   let b = s.beta.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn two(s: &Shared) {\n\
             \x20   let a = s.alpha.lock().unwrap();\n\
             \x20   let b = s.beta.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn sequential(s: &Shared) {\n\
             \x20   { let b = s.beta.lock().unwrap(); drop(b); }\n\
             \x20   { let a = s.alpha.lock().unwrap(); drop(a); }\n\
             }\n",
        );
        let report = lint_lock_order(&root);
        assert!(report.is_clean(), "{}", report.render());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn this_workspace_lock_order_is_acyclic() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_lock_order(&root);
        assert!(report.is_clean(), "{}", report.render());
    }
}
