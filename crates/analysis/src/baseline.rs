//! Accepted-diagnostics baselines for CI ratcheting.
//!
//! A lint pass that fails on *every* finding can never be turned on over
//! a codebase with accepted findings, and a pass that fails on none is
//! decoration. The baseline is the standard middle path: a committed
//! snapshot of today's accepted diagnostics; CI fails only when a run
//! produces a finding **not** in the snapshot. Fixing a finding then
//! shrinking the baseline is the ratchet.
//!
//! Entries are keyed `(code, file, message)` — deliberately *without*
//! line numbers, so editing an unrelated part of a file does not
//! invalidate its baseline. Keys are counted as a multiset: a file
//! accepted with two identical findings starts failing on the third.
//!
//! The on-disk format is line-oriented and diff-friendly:
//!
//! ```text
//! # one entry per accepted finding
//! AD0201<TAB>crates/nn/src/autograd.rs<TAB>`fetch_add` with `Ordering::Relaxed` …
//! ```

use crate::diag::{Diagnostic, Report};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A committed multiset of accepted findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

/// The file part of a `path:line` diagnostic site.
fn site_file(site: &str) -> &str {
    site.rsplit_once(':').map_or(site, |(file, _)| file)
}

fn key_of(d: &Diagnostic) -> (String, String, String) {
    (d.code.code().to_string(), site_file(&d.site).to_string(), d.message.clone())
}

impl Baseline {
    /// An empty baseline (every finding is fresh).
    #[must_use]
    pub fn new() -> Self {
        Baseline::default()
    }

    /// Parses the on-disk format. Blank lines and `#` comments are
    /// ignored; malformed lines (fewer than three tab-separated fields)
    /// are skipped rather than fatal, so a hand-edited file degrades to
    /// "stricter", never to "accepts everything".
    #[must_use]
    pub fn parse(text: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(code), Some(file), Some(message)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            *counts
                .entry((code.to_string(), file.to_string(), message.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Builds a baseline accepting every finding in `report`.
    #[must_use]
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts = BTreeMap::new();
        for d in report.diagnostics() {
            *counts.entry(key_of(d)).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Renders the on-disk format (sorted, one line per accepted
    /// finding, duplicates repeated).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Accepted lint findings (code<TAB>file<TAB>message), one line each.\n\
             # A run fails on any finding not covered here. Regenerate with\n\
             # `lint --all --write-baseline <path>`; shrink it by fixing findings.\n",
        );
        for ((code, file, message), n) in &self.counts {
            for _ in 0..*n {
                let _ = writeln!(out, "{code}\t{file}\t{message}");
            }
        }
        out
    }

    /// Number of accepted findings (multiset size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// `true` when nothing is accepted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits `report` against this baseline: findings beyond the
    /// accepted multiset are `fresh` (CI-fatal); accepted entries no run
    /// produced any more are `stale` (informational — time to shrink the
    /// file).
    #[must_use]
    pub fn diff(&self, report: &Report) -> BaselineDiff {
        let mut seen: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        for d in report.diagnostics() {
            let key = key_of(d);
            let n = seen.entry(key.clone()).or_insert(0);
            *n += 1;
            if *n > self.counts.get(&key).copied().unwrap_or(0) {
                fresh.push(d.clone());
            }
        }
        let mut stale = Vec::new();
        for (key, &accepted) in &self.counts {
            let produced = seen.get(key).copied().unwrap_or(0);
            if produced < accepted {
                stale.push((key.clone(), accepted - produced));
            }
        }
        BaselineDiff { fresh, stale }
    }
}

/// Result of [`Baseline::diff`].
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline; any entry here fails CI.
    pub fresh: Vec<Diagnostic>,
    /// Baseline entries (key, surplus count) the run no longer
    /// produces; informational.
    pub stale: Vec<((String, String, String), usize)>,
}

impl BaselineDiff {
    /// `true` when no fresh finding appeared.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty()
    }

    /// Human summary: fresh findings rendered rustc-style, stale entries
    /// listed, and a one-line verdict.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.fresh {
            let _ = writeln!(out, "{d}\n");
        }
        for ((code, file, _), n) in &self.stale {
            let _ = writeln!(out, "note: {n} stale baseline entr(ies) for {code} in {file} — the finding is gone; shrink the baseline");
        }
        if self.fresh.is_empty() {
            out.push_str("baseline: no new findings\n");
        } else {
            let _ =
                writeln!(out, "baseline: {} new finding(s) not in the baseline", self.fresh.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagCode;

    fn report_with(sites: &[(&str, &str)]) -> Report {
        let mut r = Report::new();
        for (site, msg) in sites {
            r.push(DiagCode::AtomicOrderingAudit, *site, *msg);
        }
        r
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let report = report_with(&[("a.rs:10", "m1"), ("a.rs:20", "m1"), ("b.rs:5", "m2")]);
        let base = Baseline::from_report(&report);
        assert_eq!(base.len(), 3);
        let reparsed = Baseline::parse(&base.render());
        assert_eq!(base, reparsed);
    }

    #[test]
    fn line_moves_do_not_invalidate_the_baseline() {
        let base = Baseline::from_report(&report_with(&[("a.rs:10", "m1")]));
        // The same finding after the file grew by 40 lines.
        let diff = base.diff(&report_with(&[("a.rs:50", "m1")]));
        assert!(diff.is_clean(), "{}", diff.render());
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn new_findings_are_fresh_and_fixed_ones_go_stale() {
        let base = Baseline::from_report(&report_with(&[("a.rs:1", "m1"), ("a.rs:2", "m1")]));
        // One duplicate fixed, one brand-new finding elsewhere.
        let diff = base.diff(&report_with(&[("a.rs:1", "m1"), ("c.rs:9", "m3")]));
        assert_eq!(diff.fresh.len(), 1);
        assert_eq!(diff.fresh[0].site, "c.rs:9");
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].1, 1);
        assert!(!diff.is_clean());
        assert!(diff.render().contains("1 new finding"));
    }

    #[test]
    fn comments_and_malformed_lines_are_ignored() {
        let base = Baseline::parse("# header\n\nAD0201\ta.rs\tm1\nnot-a-valid-line\n");
        assert_eq!(base.len(), 1);
        let diff = base.diff(&report_with(&[("a.rs:3", "m1")]));
        assert!(diff.is_clean());
    }
}
