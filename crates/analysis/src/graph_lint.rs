//! Lints a built autograd graph for training hazards.
//!
//! Given the root of a loss graph and the model's declared parameters,
//! [`lint_graph`] walks the differentiable subgraph (the same edges
//! `backward()` will traverse — gradient-stopped inputs are not recorded
//! as parents) and reports:
//!
//! - **AD0101** parameters unreachable from the loss (never trained),
//! - **AD0102** explicit gradient cuts (`detach` nodes, or a root that
//!   does not require gradients at all),
//! - **AD0103** `ln` applied to non-positive or unclamped inputs,
//! - **AD0104** NaN-prone division / `sqrt`,
//! - **AD0105** branches multiplied by an all-zero constant (dead
//!   gradient pathways that silently train nothing).

use crate::diag::{DiagCode, Report, Severity};
use aero_nn::Var;
use std::collections::HashSet;

/// Margin below which an `ln`/`div` input counts as unclamped.
const CLAMP_MARGIN: f32 = 1e-6;

fn site(v: &Var) -> String {
    format!("node#{}({})", v.id(), v.op())
}

fn min_of(v: &Var) -> f32 {
    v.value().as_slice().iter().copied().fold(f32::INFINITY, f32::min)
}

fn min_abs_of(v: &Var) -> f32 {
    v.value().as_slice().iter().map(|x| x.abs()).fold(f32::INFINITY, f32::min)
}

fn is_all_zero(v: &Var) -> bool {
    v.value().as_slice().iter().all(|&x| x == 0.0)
}

fn check_node(v: &Var, report: &mut Report) {
    let parents = v.parents();
    match v.op() {
        "ln" => {
            if let Some(p) = parents.first() {
                let m = min_of(p);
                if m <= 0.0 {
                    report.push_with_severity(
                        DiagCode::UnclampedLn,
                        Severity::Error,
                        site(v),
                        format!("ln input minimum is {m}; the result is -inf/NaN and will poison gradients"),
                    );
                } else if m < CLAMP_MARGIN {
                    report.push(
                        DiagCode::UnclampedLn,
                        site(v),
                        format!("ln input minimum is {m:.2e} (< {CLAMP_MARGIN:.0e}); clamp or add an epsilon before taking the log"),
                    );
                }
            }
        }
        "sqrt" => {
            if let Some(p) = parents.first() {
                let m = min_of(p);
                if m < 0.0 {
                    report.push_with_severity(
                        DiagCode::NanProneOp,
                        Severity::Error,
                        site(v),
                        format!("sqrt input minimum is {m}; negative inputs produce NaN"),
                    );
                } else if m < CLAMP_MARGIN {
                    report.push(
                        DiagCode::NanProneOp,
                        site(v),
                        format!(
                            "sqrt input minimum is {m:.2e}; the gradient 1/(2*sqrt(x)) is unbounded near zero"
                        ),
                    );
                }
            }
        }
        "div" => {
            if let Some(d) = parents.get(1) {
                let m = min_abs_of(d);
                if m < CLAMP_MARGIN {
                    report.push(
                        DiagCode::NanProneOp,
                        site(v),
                        format!("division by a denominator with min |x| = {m:.2e}; clamp it away from zero"),
                    );
                }
            }
        }
        "mul"
            // A learnable branch multiplied by an all-zero constant can
            // never influence the loss: its gradient is identically zero.
            if parents.len() == 2 => {
                for (zero, live) in [(&parents[0], &parents[1]), (&parents[1], &parents[0])] {
                    if zero.is_leaf()
                        && !zero.requires_grad()
                        && is_all_zero(zero)
                        && live.requires_grad()
                    {
                        report.push(
                            DiagCode::DeadBranch,
                            site(v),
                            "multiplication by an all-zero constant: the other operand's subgraph receives zero gradient".to_string(),
                        );
                        break;
                    }
                }
            }
        "detach" => {
            report.push(
                DiagCode::DetachedSubgraph,
                site(v),
                "gradient flow is explicitly cut here; verify the upstream subgraph is meant to be frozen".to_string(),
            );
        }
        _ => {}
    }
}

/// Walks the differentiable graph under `root` and lints it.
///
/// `params` are the model's declared trainable parameters (in the order
/// [`aero_nn::Module::params`] returns them); any of them not reachable
/// from `root` through differentiable edges is reported as AD0101.
#[must_use]
pub fn lint_graph(root: &Var, params: &[Var]) -> Report {
    let mut report = Report::new();

    if !root.requires_grad() {
        report.push_with_severity(
            DiagCode::DetachedSubgraph,
            Severity::Error,
            format!("root {}", site(root)),
            "the loss does not require gradients; backward() would train nothing".to_string(),
        );
    }

    // Iterative DFS over the recorded (differentiable) edges.
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack = vec![root.clone()];
    while let Some(v) = stack.pop() {
        if !seen.insert(v.id()) {
            continue;
        }
        check_node(&v, &mut report);
        stack.extend(v.parents());
    }

    for (i, p) in params.iter().enumerate() {
        if !p.requires_grad() {
            report.push(
                DiagCode::DetachedParameter,
                format!("parameter[{i}] {}", site(p)),
                "declared as trainable but does not require gradients".to_string(),
            );
        } else if !seen.contains(&p.id()) {
            report.push(
                DiagCode::DetachedParameter,
                format!("parameter[{i}] {}", site(p)),
                "unreachable from the loss: backward() will never populate its gradient"
                    .to_string(),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_tensor::Tensor;

    fn param(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::parameter(Tensor::from_vec(data, shape))
    }

    #[test]
    fn healthy_graph_is_clean() {
        let w = param(vec![0.5, -0.25], &[2]);
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let loss = w.mul(&x).sum();
        let report = lint_graph(&loss, &[w]);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn unreachable_parameter_fires_ad0101() {
        let used = param(vec![1.0], &[1]);
        let unused = param(vec![1.0], &[1]);
        let loss = used.mul(&used).sum();
        let report = lint_graph(&loss, &[used, unused]);
        assert!(report.has_code(DiagCode::DetachedParameter), "{}", report.render());
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn detach_fires_ad0102() {
        let w = param(vec![2.0], &[1]);
        let frozen = w.mul(&w).detach();
        let loss = frozen.mul(&w).sum();
        let report = lint_graph(&loss, &[w]);
        assert!(report.has_code(DiagCode::DetachedSubgraph), "{}", report.render());
    }

    #[test]
    fn grad_free_root_is_an_error() {
        let x = Var::constant(Tensor::from_vec(vec![1.0], &[1]));
        let loss = x.mul(&x).sum();
        let report = lint_graph(&loss, &[]);
        assert!(report.has_code(DiagCode::DetachedSubgraph));
        assert!(!report.is_clean());
    }

    #[test]
    fn unclamped_ln_fires_ad0103() {
        let w = param(vec![0.0, 1.0], &[2]);
        let loss = w.ln().sum();
        let report = lint_graph(&loss, &[w]);
        assert!(report.has_code(DiagCode::UnclampedLn), "{}", report.render());
        assert!(!report.is_clean(), "ln(0) must be an error");
    }

    #[test]
    fn near_zero_division_fires_ad0104() {
        let w = param(vec![1.0], &[1]);
        let denom = Var::constant(Tensor::from_vec(vec![1e-9], &[1]));
        let loss = w.div(&denom).sum();
        let report = lint_graph(&loss, &[w]);
        assert!(report.has_code(DiagCode::NanProneOp), "{}", report.render());
    }

    #[test]
    fn zero_constant_mul_fires_ad0105() {
        let w = param(vec![3.0], &[1]);
        let gate = Var::constant(Tensor::zeros(&[1]));
        let loss = w.mul(&gate).sum();
        let report = lint_graph(&loss, &[w]);
        assert!(report.has_code(DiagCode::DeadBranch), "{}", report.render());
    }
}
