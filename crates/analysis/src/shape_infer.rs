//! The shape-inference context: a thin accounting layer over the pure
//! symbolic shape rules in [`aero_tensor::sym`].
//!
//! [`ShapeCtx`] tracks a dotted component path (`unet.res_up.conv1`) and
//! converts rule failures into coded [`Diagnostic`](crate::Diagnostic)s
//! instead of panics. Each wrapper returns `Option<ShapeSpec>`; `None`
//! means the operation was inconsistent and downstream checks that depend
//! on its output should be skipped (the diagnostic has already been
//! recorded).

use crate::diag::{DiagCode, Report};
use aero_nn::Module;
use aero_tensor::sym::{self, ShapeSpec};
use aero_tensor::TensorError;

/// Accumulates diagnostics while a shape program walks a model description.
#[derive(Debug, Default)]
pub struct ShapeCtx {
    stack: Vec<String>,
    report: Report,
}

impl ShapeCtx {
    /// A fresh context with an empty site stack.
    #[must_use]
    pub fn new() -> Self {
        ShapeCtx::default()
    }

    /// Runs `f` with `name` pushed onto the component path.
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce(&mut ShapeCtx) -> T) -> T {
        self.stack.push(name.to_string());
        let out = f(self);
        self.stack.pop();
        out
    }

    /// The current dotted component path.
    #[must_use]
    pub fn site(&self) -> String {
        if self.stack.is_empty() {
            "<model>".to_string()
        } else {
            self.stack.join(".")
        }
    }

    /// Records a diagnostic at the current site.
    pub fn error(&mut self, code: DiagCode, message: impl Into<String>) {
        let site = self.site();
        self.report.push(code, site, message);
    }

    /// Requires `cond`; records `code` with `message` otherwise.
    pub fn require(&mut self, cond: bool, code: DiagCode, message: impl Into<String>) -> bool {
        if !cond {
            self.error(code, message);
        }
        cond
    }

    /// Requires that `div` divides `n` (AD0004 otherwise).
    pub fn require_divides(&mut self, div: usize, n: usize, what: &str) -> bool {
        if div == 0 || !n.is_multiple_of(div) {
            self.error(DiagCode::DivisibilityViolation, format!("{what}: {div} must divide {n}"));
            return false;
        }
        true
    }

    /// Requires two specs to be identical dimension-for-dimension
    /// (AD0001 otherwise).
    pub fn require_same_shape(&mut self, got: &ShapeSpec, want: &ShapeSpec, what: &str) -> bool {
        let same = got.rank() == want.rank()
            && got.dims().iter().zip(want.dims()).all(|(a, b)| sym::dim_eq(a, b));
        if !same {
            self.error(DiagCode::ShapeMismatch, format!("{what}: got {got}, expected {want}"));
        }
        same
    }

    fn record(&mut self, code: DiagCode, e: &TensorError) {
        self.error(code, e.to_string());
    }

    /// Symbolic matmul; AD0001 on failure.
    pub fn matmul(&mut self, lhs: &ShapeSpec, rhs: &ShapeSpec) -> Option<ShapeSpec> {
        match sym::sym_matmul(lhs, rhs) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic bmm; AD0001 on failure.
    pub fn bmm(&mut self, lhs: &ShapeSpec, rhs: &ShapeSpec) -> Option<ShapeSpec> {
        match sym::sym_bmm(lhs, rhs) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic elementwise broadcast; AD0002 on failure.
    pub fn broadcast(&mut self, lhs: &ShapeSpec, rhs: &ShapeSpec) -> Option<ShapeSpec> {
        match sym::sym_broadcast(lhs, rhs) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::BroadcastConflict, &e);
                None
            }
        }
    }

    /// Symbolic reshape; AD0003 on failure.
    pub fn reshape(&mut self, from: &ShapeSpec, to: &ShapeSpec) -> Option<ShapeSpec> {
        match sym::sym_reshape(from, to) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ReshapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic conv2d; AD0001 on failure.
    pub fn conv2d(
        &mut self,
        input: &ShapeSpec,
        weight: &[usize],
        stride: usize,
        pad: usize,
    ) -> Option<ShapeSpec> {
        match sym::sym_conv2d(input, weight, stride, pad) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic transposed conv2d; AD0001 on failure.
    pub fn conv_transpose2d(
        &mut self,
        input: &ShapeSpec,
        weight: &[usize],
        stride: usize,
        pad: usize,
    ) -> Option<ShapeSpec> {
        match sym::sym_conv_transpose2d(input, weight, stride, pad) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic pooling; AD0004 on failure (window must tile the input).
    pub fn pool2d(&mut self, input: &ShapeSpec, k: usize) -> Option<ShapeSpec> {
        match sym::sym_pool2d(input, k) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::DivisibilityViolation, &e);
                None
            }
        }
    }

    /// Symbolic nearest-neighbour upsampling; AD0001 on failure.
    pub fn upsample2x(&mut self, input: &ShapeSpec) -> Option<ShapeSpec> {
        match sym::sym_upsample2x(input) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic concat; AD0001 on failure.
    pub fn concat(&mut self, specs: &[&ShapeSpec], axis: usize) -> Option<ShapeSpec> {
        match sym::sym_concat(specs, axis) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic narrow; AD0001 on failure.
    pub fn narrow(
        &mut self,
        spec: &ShapeSpec,
        axis: usize,
        start: usize,
        len: usize,
    ) -> Option<ShapeSpec> {
        match sym::sym_narrow(spec, axis, start, len) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Symbolic permute; AD0001 on failure.
    pub fn permute(&mut self, spec: &ShapeSpec, axes: &[usize]) -> Option<ShapeSpec> {
        match sym::sym_permute(spec, axes) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record(DiagCode::ShapeMismatch, &e);
                None
            }
        }
    }

    /// Runs a live module's [`Module::infer_shape`] hook under `name`,
    /// classifying failures by the underlying error kind.
    pub fn module(
        &mut self,
        name: &str,
        module: &dyn Module,
        input: &ShapeSpec,
    ) -> Option<ShapeSpec> {
        self.scoped(name, |ctx| match module.infer_shape(input) {
            Ok(s) => Some(s),
            Err(e) => {
                let code = match &e {
                    TensorError::BroadcastMismatch { .. } => DiagCode::BroadcastConflict,
                    TensorError::ShapeDataMismatch { .. } => DiagCode::ReshapeMismatch,
                    _ => DiagCode::ShapeMismatch,
                };
                ctx.error(code, format!("{}: {e}", module.describe()));
                None
            }
        })
    }

    /// Consumes the context, yielding the accumulated report.
    #[must_use]
    pub fn into_report(self) -> Report {
        self.report
    }

    /// Read access to the report while the walk is still running.
    #[must_use]
    pub fn report(&self) -> &Report {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_tensor::sym::Dim;

    #[test]
    fn sites_nest_and_failures_map_to_codes() {
        let mut ctx = ShapeCtx::new();
        ctx.scoped("unet", |ctx| {
            ctx.scoped("mid", |ctx| {
                assert_eq!(ctx.site(), "unet.mid");
                // Inner-dim conflict -> AD0001.
                ctx.matmul(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[4, 5]));
                // Broadcast conflict -> AD0002.
                ctx.broadcast(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[2, 4]));
                // Element-count change -> AD0003.
                ctx.reshape(&ShapeSpec::fixed(&[2, 3]), &ShapeSpec::fixed(&[7]));
            });
        });
        let r = ctx.into_report();
        assert!(r.has_code(DiagCode::ShapeMismatch));
        assert!(r.has_code(DiagCode::BroadcastConflict));
        assert!(r.has_code(DiagCode::ReshapeMismatch));
        assert!(r.diagnostics().iter().all(|d| d.site == "unet.mid"));
    }

    #[test]
    fn successful_ops_flow_symbolic_batches() {
        let mut ctx = ShapeCtx::new();
        let x = ShapeSpec::batched("B", &[8]);
        let w = ShapeSpec::fixed(&[8, 4]);
        let y = ctx.matmul(&x, &w).expect("consistent matmul");
        assert_eq!(y.dims()[0], Dim::sym("B"));
        assert_eq!(y.dims()[1], Dim::Fixed(4));
        assert!(ctx.into_report().is_clean());
    }

    #[test]
    fn require_divides_flags_ad0004() {
        let mut ctx = ShapeCtx::new();
        assert!(ctx.require_divides(2, 8, "attention heads"));
        assert!(!ctx.require_divides(3, 8, "attention heads"));
        let r = ctx.into_report();
        assert!(r.has_code(DiagCode::DivisibilityViolation));
        assert_eq!(r.error_count(), 1);
    }
}
