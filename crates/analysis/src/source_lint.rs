//! Token-level source lints over the workspace tree.
//!
//! Every pass here matches against the [`crate::token`] stream, so
//! patterns mentioned inside comments, string literals, or raw strings
//! can never produce findings — the failure mode of the line-regex scan
//! this module replaced. Seven passes share one file walk:
//!
//! - **Serial reference-kernel bypasses** ([`AD0110`]).
//!   `aero_tensor::ops` keeps `matmul_serial` / `conv2d_serial` around
//!   as the bit-exact oracles the parallel-equivalence tests compare
//!   against. Production code must never call them: it would silently
//!   forfeit the sharded kernel layer on the hot path.
//! - **Compute-backend bypasses** ([`AD0112`]). Kernel dispatch routes
//!   through the active `ComputeBackend`; code outside the tensor
//!   crate must never name a concrete backend (`ReferenceBackend`,
//!   `BlockedBackend`) or call a per-slab backend kernel
//!   (`matmul_slab`, …) directly — that hard-wires an implementation
//!   past both the backend policy and the sharding layer. Selecting a
//!   policy via `BackendKind` / `set_global_backend` / `with_backend`
//!   is sanctioned and never flagged.
//! - **Panicking kernels on serving paths** ([`AD0111`]). Every
//!   shape-checked tensor op has a `try_*` variant returning
//!   `TensorError`; long-lived serving code (`aero-serve` and the core
//!   pipeline crate) must use those so a malformed request surfaces as
//!   a typed reply instead of killing a worker thread.
//! - **Deprecated condition-API callers** ([`AD0113`]). The positional
//!   `encode_condition(item, caption_g, g_prime)` shim only exists so
//!   external callers can migrate to `TaskSpec` + `encode_task`;
//!   workspace code calling it (outside the defining file) is flagged.
//! - **Atomic ordering audit** ([`AD0201`]). `Ordering::Relaxed` in a
//!   read-modify-write call, or relaxed stores publishing several
//!   fields from one function, must carry a
//!   `// lint: relaxed-ok(<reason>)` annotation.
//! - **Nondeterministic paths** ([`AD0202`]). Wall clocks, ad-hoc
//!   `thread::spawn`, and hash-ordered containers inside the
//!   determinism-critical crates (`tensor`, `diffusion`, `core`) break
//!   the bitwise-reproducibility contract unless annotated
//!   `// lint: nondet-ok(<reason>)`; sanctioned threading lives in
//!   `par_kernels.rs`.
//! - **Panics in worker closures** ([`AD0203`]). `unwrap`/`expect`/
//!   slice indexing reachable from a closure handed to `spawn` in the
//!   serve crate, outside the `catch_unwind` recovery layer, kills a
//!   worker thread instead of producing a typed reply.
//!
//! The lock-order cycle pass ([`AD0200`]) builds on the same walker but
//! lives in [`crate::lockorder`]; [`lint_source_all`] runs all eight.
//!
//! [`AD0110`]: crate::DiagCode::SerialKernelBypass
//! [`AD0111`]: crate::DiagCode::PanickingKernelCall
//! [`AD0112`]: crate::DiagCode::BackendBypass
//! [`AD0113`]: crate::DiagCode::DeprecatedConditionApi
//! [`AD0200`]: crate::DiagCode::LockOrderCycle
//! [`AD0201`]: crate::DiagCode::AtomicOrderingAudit
//! [`AD0202`]: crate::DiagCode::NondeterministicPath
//! [`AD0203`]: crate::DiagCode::PanicInWorker

use crate::diag::{DiagCode, Report};
use crate::token::{self, FnItem, Token, TokenKind};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Names of the serial reference kernels that only the tensor crate's
/// own tests may call.
const SERIAL_KERNELS: [&str; 2] = ["matmul_serial", "conv2d_serial"];

/// Identifiers that hard-wire a concrete compute backend: the backend
/// types themselves, plus the per-slab kernels of the `ComputeBackend`
/// trait. Only the tensor crate's dispatch layer may touch these —
/// everything else must reach compute through the dispatched ops, which
/// consult the active backend policy.
const BACKEND_INTERNALS: [&str; 5] =
    ["ReferenceBackend", "BlockedBackend", "matmul_slab", "q8_matmul_slab", "softmax_slab"];

/// Path components that exempt a file from every source pass:
/// test/bench trees (which exercise forbidden patterns by design),
/// vendored shims, and build output.
const EXEMPT_COMPONENTS: [&str; 4] = ["tests", "benches", "shims", "target"];

/// The crates whose `src/` trees count as long-lived serving paths: a
/// shape panic there takes a worker thread (or the whole server) down
/// instead of failing one request.
const SERVING_CRATES: [&str; 2] = ["serve", "core"];

/// The crates whose outputs must be bitwise reproducible; anything
/// order- or clock-dependent inside them is an `AD0202` finding.
const DETERMINISM_CRATES: [&str; 3] = ["tensor", "diffusion", "core"];

/// Atomic read-modify-write methods: relaxed ordering on these needs a
/// written justification.
const RMW_METHODS: [&str; 11] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

fn is_exempt(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str().is_some_and(|name| EXEMPT_COMPONENTS.contains(&name)))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if is_exempt(&path) {
            continue;
        }
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// One tokenized workspace source file, truncated at its first
/// `#[cfg(test)]` marker (in-file unit tests exercise forbidden
/// patterns deliberately).
pub(crate) struct SourceFile {
    /// Path shown in diagnostics, relative to the lint root.
    pub shown: String,
    /// Name of the crate the file belongs to (`crates/<name>/…`), or
    /// the top-level package name for root `src/` files.
    pub crate_name: String,
    /// The file's text.
    pub src: String,
    /// Token stream up to the test boundary.
    pub tokens: Vec<Token>,
    /// `fn` items found in the (truncated) stream.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    pub(crate) fn load(path: &Path, root: &Path) -> Option<SourceFile> {
        let src = fs::read_to_string(path).ok()?;
        let shown = path.strip_prefix(root).unwrap_or(path).display().to_string();
        let rel = path.strip_prefix(root).unwrap_or(path);
        let mut comps = rel.components().filter_map(|c| c.as_os_str().to_str());
        let crate_name = match comps.next() {
            Some("crates") => comps.next().unwrap_or("?").to_string(),
            _ => "suite".to_string(),
        };
        let mut tokens = token::tokenize(&src);
        tokens.truncate(token::test_boundary(&src, &tokens));
        let fns = token::functions(&src, &tokens);
        Some(SourceFile { shown, crate_name, src, tokens, fns })
    }

    /// The base name of the file (`runtime.rs`).
    pub(crate) fn file_name(&self) -> &str {
        self.shown.rsplit('/').next().unwrap_or(&self.shown)
    }

    /// Diagnostic site string for a line of this file.
    pub(crate) fn site(&self, line: u32) -> String {
        format!("{}:{line}", self.shown)
    }

    /// Text of token `i`.
    pub(crate) fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.src)
    }

    /// Lines carrying a `lint: <key>(reason)` annotation; a finding on
    /// line `L` is suppressed when `L` or `L - 1` is annotated.
    pub(crate) fn allowlist(&self, key: &str) -> BTreeSet<u32> {
        token::annotation_lines(&self.src, &self.tokens, key)
    }
}

fn allowlisted(lines: &BTreeSet<u32>, line: u32) -> bool {
    lines.contains(&line) || (line > 1 && lines.contains(&(line - 1)))
}

/// Loads every non-exempt `.rs` file under `crates/*/src` and the
/// top-level `src/`, tokenized and test-truncated. Missing directories
/// are silently ignored, so every pass is a no-op away from a checkout.
pub(crate) fn load_workspace(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members {
            if !is_exempt(&member) {
                rust_files_under(&member.join("src"), &mut files);
            }
        }
    }
    rust_files_under(&root.join("src"), &mut files);
    files.iter().filter_map(|p| SourceFile::load(p, root)).collect()
}

/// Code-token indices of `file`.
fn code(file: &SourceFile) -> Vec<usize> {
    token::code_indices(&file.tokens)
}

/// Scans the workspace rooted at `root` for production call sites of the
/// serial reference kernels, reporting each as `AD0110`.
///
/// The tensor crate itself (where the oracles live), `tests/`/`benches/`
/// trees, `shims/`, and `target/` are exempt; mentions inside comments
/// and string literals are invisible to the token scan.
#[must_use]
pub fn lint_kernel_callsites(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if file.crate_name == "tensor" {
            continue;
        }
        for t in &file.tokens {
            if t.kind == TokenKind::Ident && SERIAL_KERNELS.contains(&t.text(&file.src)) {
                let kernel = t.text(&file.src);
                report.push(
                    DiagCode::SerialKernelBypass,
                    file.site(t.line),
                    format!(
                        "`{kernel}` is a test-only reference oracle; \
                         call the parallel entry point instead"
                    ),
                );
            }
        }
    }
    report
}

/// Scans the workspace rooted at `root` for code outside the tensor
/// crate that names a concrete compute backend or calls a per-slab
/// backend kernel directly, reporting each as `AD0112`.
///
/// Backend *policy* selection — `BackendKind`, `set_global_backend`,
/// `with_backend`, the CLI `--backend` flag — is the sanctioned surface
/// and never matches; only the implementation-level names in
/// [`BACKEND_INTERNALS`] do. The tensor crate (which owns the dispatch
/// layer), `tests/`/`benches/` trees, `shims/`, and `target/` are
/// exempt.
#[must_use]
pub fn lint_backend_callsites(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if file.crate_name == "tensor" {
            continue;
        }
        for t in &file.tokens {
            if t.kind == TokenKind::Ident && BACKEND_INTERNALS.contains(&t.text(&file.src)) {
                let name = t.text(&file.src);
                report.push(
                    DiagCode::BackendBypass,
                    file.site(t.line),
                    format!(
                        "`{name}` hard-wires a concrete compute backend; go through the \
                         dispatched tensor ops and select policy via `BackendKind` instead"
                    ),
                );
            }
        }
    }
    report
}

/// Panicking tensor ops that have a `try_*` twin; the scan looks for
/// `.name(` as adjacent code tokens, so `try_matmul` and
/// `matmul_serial` never match.
const PANICKING_KERNELS: [&str; 10] = [
    "matmul",
    "bmm",
    "conv2d",
    "im2col",
    "col2im",
    "conv_transpose2d",
    "avg_pool2d",
    "max_pool2d",
    "upsample_nearest2x",
    "softmax_last_axis",
];

/// Scans the long-lived serving crates (`crates/serve`, `crates/core`)
/// for direct calls of panicking tensor kernels that have `try_*`
/// variants, reporting each as `AD0111`.
#[must_use]
pub fn lint_panicking_callsites(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if !SERVING_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let code = code(file);
        for w in code.windows(3) {
            let [a, b, c] = [w[0], w[1], w[2]];
            if file.text(a) == "."
                && file.tokens[b].kind == TokenKind::Ident
                && PANICKING_KERNELS.contains(&file.text(b))
                && file.text(c) == "("
            {
                let name = file.text(b).to_string();
                report.push(
                    DiagCode::PanickingKernelCall,
                    file.site(file.tokens[b].line),
                    format!(
                        "`{name}` panics on shape mismatch; serving paths must call \
                         `try_{name}` and turn the error into a typed reply"
                    ),
                );
            }
        }
    }
    report
}

/// Scans the workspace for call sites of the deprecated positional
/// `encode_condition(item, caption_g, g_prime)` shim, reporting each as
/// `AD0113`. The shim survives one release so external callers can
/// migrate to `TaskSpec` + `encode_task`; workspace code must already be
/// on the task API. The defining file (`crates/core/src/pipeline.rs`,
/// which hosts the shim's own forwarding body) plus the usual exempt
/// trees are skipped, and the scan looks for `.encode_condition(` as
/// adjacent code tokens so docs and strings never match.
#[must_use]
pub fn lint_deprecated_condition_api(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if file.crate_name == "core" && file.file_name() == "pipeline.rs" {
            continue;
        }
        let code = code(file);
        for w in code.windows(3) {
            let [a, b, c] = [w[0], w[1], w[2]];
            if file.text(a) == "."
                && file.tokens[b].kind == TokenKind::Ident
                && file.text(b) == "encode_condition"
                && file.text(c) == "("
            {
                report.push(
                    DiagCode::DeprecatedConditionApi,
                    file.site(file.tokens[b].line),
                    "`encode_condition` is a deprecated migration shim; build a `TaskSpec` \
                     (e.g. `TaskSpec::text`) and call `encode_task` instead",
                );
            }
        }
    }
    report
}

/// Audits relaxed atomic orderings workspace-wide (`AD0201`).
///
/// Two patterns are flagged unless the line (or the line above it)
/// carries `// lint: relaxed-ok(<reason>)`:
///
/// 1. a read-modify-write method (`fetch_add`, `swap`,
///    `compare_exchange`, …) called with `Ordering::Relaxed` anywhere in
///    the same statement;
/// 2. one function issuing relaxed `.store(..)` calls to two or more
///    distinct fields — a cross-field publish that readers may observe
///    out of order.
#[must_use]
pub fn lint_atomic_orderings(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        let ok_lines = file.allowlist("relaxed-ok");
        let code = code(file);
        // Statement spans around each `Ordering::Relaxed` occurrence.
        for (ci, &ti) in code.iter().enumerate() {
            if file.text(ti) != "Relaxed"
                || ci < 3
                || file.text(code[ci - 1]) != ":"
                || file.text(code[ci - 2]) != ":"
                || file.text(code[ci - 3]) != "Ordering"
            {
                continue;
            }
            let is_stmt_edge = |i: usize| matches!(file.text(code[i]), ";" | "{" | "}");
            let start = (0..ci).rev().find(|&i| is_stmt_edge(i)).map_or(0, |i| i + 1);
            let end = (ci..code.len()).find(|&i| is_stmt_edge(i)).unwrap_or(code.len());
            for w in start..end.saturating_sub(1) {
                let (a, b) = (code[w], code[w + 1]);
                if file.text(a) == "."
                    && file.tokens[b].kind == TokenKind::Ident
                    && RMW_METHODS.contains(&file.text(b))
                {
                    let line = file.tokens[b].line;
                    if !allowlisted(&ok_lines, line) {
                        let method = file.text(b).to_string();
                        report.push(
                            DiagCode::AtomicOrderingAudit,
                            file.site(line),
                            format!(
                                "`{method}` with `Ordering::Relaxed` is a read-modify-write; \
                                 justify it with `// lint: relaxed-ok(<reason>)` or strengthen \
                                 the ordering"
                            ),
                        );
                    }
                    break;
                }
            }
        }
        // Cross-field publish: ≥2 distinct relaxed-store receivers per fn.
        for f in &file.fns {
            if f.body.0 >= f.body.1 {
                continue;
            }
            let body: Vec<usize> =
                code.iter().copied().filter(|&ti| ti >= f.body.0 && ti < f.body.1).collect();
            let mut receivers: Vec<(String, u32)> = Vec::new();
            for w in 0..body.len().saturating_sub(2) {
                let (dot, store, paren) = (body[w], body[w + 1], body[w + 2]);
                if file.text(dot) != "." || file.text(store) != "store" || file.text(paren) != "(" {
                    continue;
                }
                // Receiver: the ident (or tuple-field number) before the dot.
                let recv = (w > 0).then(|| file.text(body[w - 1]).to_string());
                let Some(recv) = recv else { continue };
                // Only stores that are themselves relaxed count: look for
                // `Relaxed` before the matching `)`.
                let mut depth = 0i32;
                let mut relaxed = false;
                for &ti in &body[w + 2..] {
                    match file.text(ti) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "Relaxed" => relaxed = true,
                        _ => {}
                    }
                }
                let line = file.tokens[store].line;
                if relaxed && !allowlisted(&ok_lines, line) {
                    receivers.push((recv, line));
                }
            }
            let distinct: BTreeSet<&str> = receivers.iter().map(|(r, _)| r.as_str()).collect();
            if distinct.len() >= 2 {
                let (_, line) = receivers[1];
                let fields: Vec<&str> = distinct.iter().copied().collect();
                report.push(
                    DiagCode::AtomicOrderingAudit,
                    file.site(line),
                    format!(
                        "`{}` publishes {} fields ({}) with relaxed stores; readers may observe \
                         them out of order — use Release/Acquire or annotate each store with \
                         `// lint: relaxed-ok(<reason>)`",
                        f.name,
                        distinct.len(),
                        fields.join(", "),
                    ),
                );
            }
        }
    }
    report
}

/// Flags nondeterminism sources inside the determinism-critical crates
/// (`AD0202`): wall clocks (`SystemTime`, `Instant::now`), ad-hoc
/// thread spawns, and hash-ordered containers (`HashMap`/`HashSet`).
///
/// `par_kernels.rs` is the sanctioned threading layer and is exempt;
/// individual sites are allowlisted with `// lint: nondet-ok(<reason>)`.
#[must_use]
pub fn lint_nondeterminism(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if !DETERMINISM_CRATES.contains(&file.crate_name.as_str())
            || file.file_name() == "par_kernels.rs"
        {
            continue;
        }
        let ok_lines = file.allowlist("nondet-ok");
        let code = code(file);
        let flag = |line: u32, msg: String, report: &mut Report| {
            if !allowlisted(&ok_lines, line) {
                report.push(DiagCode::NondeterministicPath, file.site(line), msg);
            }
        };
        for (ci, &ti) in code.iter().enumerate() {
            if file.tokens[ti].kind != TokenKind::Ident {
                continue;
            }
            let next = |k: usize| code.get(ci + k).map(|&j| file.text(j));
            let line = file.tokens[ti].line;
            match file.text(ti) {
                "SystemTime" => flag(
                    line,
                    "`SystemTime` is a wall clock; determinism-critical code must not read it \
                     (annotate `// lint: nondet-ok(<reason>)` if it never feeds tensors)"
                        .to_string(),
                    &mut report,
                ),
                "Instant" if next(1) == Some(":") && next(3) == Some("now") => flag(
                    line,
                    "`Instant::now` is a wall clock; determinism-critical code must not branch \
                     on it (annotate `// lint: nondet-ok(<reason>)` if timing only feeds \
                     metrics)"
                        .to_string(),
                    &mut report,
                ),
                "spawn"
                    if next(1) == Some("(")
                        && ci >= 2
                        && (file.text(code[ci - 1]) == "."
                            || (file.text(code[ci - 1]) == ":"
                                && file.text(code[ci - 2]) == ":")) =>
                {
                    flag(
                        line,
                        "ad-hoc thread spawn in a determinism-critical crate; route parallelism \
                         through `par_kernels` so sharding stays deterministic"
                            .to_string(),
                        &mut report,
                    );
                }
                name @ ("HashMap" | "HashSet") => flag(
                    line,
                    format!(
                        "`{name}` iteration order is nondeterministic; use a BTree container or \
                         sort before output (annotate `// lint: nondet-ok(<reason>)` if order \
                         never escapes)"
                    ),
                    &mut report,
                ),
                _ => {}
            }
        }
    }
    report
}

/// Flags panic sites inside worker closures in the serve crate
/// (`AD0203`): `.unwrap()`, `.expect(..)`, and slice indexing reachable
/// from a closure passed to `spawn(..)` without `catch_unwind` between
/// the site and the thread boundary.
///
/// Reachability follows free-function calls *within the same file* as
/// the spawn — the recovery boundary for a worker must live near the
/// worker, so cross-file propagation is deliberately out of scope (a
/// documented soundness limit, see DESIGN.md §12).
#[must_use]
pub fn lint_worker_panics(root: &Path) -> Report {
    let mut report = Report::new();
    for file in &load_workspace(root) {
        if file.crate_name != "serve" {
            continue;
        }
        scan_worker_panics(file, &mut report);
    }
    report
}

fn scan_worker_panics(file: &SourceFile, report: &mut Report) {
    let code = code(file);
    // Paren-matched argument ranges of every `catch_unwind(` call: panic
    // sites inside are recovered, and calls inside are not traversed.
    let mut protected: Vec<(usize, usize)> = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        if file.text(ti) == "catch_unwind" && code.get(ci + 1).is_some_and(|&j| file.text(j) == "(")
        {
            if let Some(close) = match_paren(file, &code, ci + 1) {
                protected.push((code[ci + 1], code[close]));
            }
        }
    }
    let shielded = |ti: usize| protected.iter().any(|&(s, e)| ti > s && ti < e);

    // Token ranges of every closure passed to a `spawn(` call.
    let mut roots: Vec<(usize, usize)> = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        if file.text(ti) != "spawn"
            || file.tokens[ti].kind != TokenKind::Ident
            || code.get(ci + 1).is_none_or(|&j| file.text(j) != "(")
        {
            continue;
        }
        let Some(close) = match_paren(file, &code, ci + 1) else { continue };
        // Find the closure head (`move ||` / `|args|`) inside the args.
        let mut k = ci + 2;
        while k < close {
            if file.text(code[k]) == "move" || file.text(code[k]) == "|" {
                let head = if file.text(code[k]) == "move" { k + 1 } else { k };
                if file.text(code[head]) == "|" {
                    // Skip to the closing pipe (`||` is two tokens).
                    let mut p = head + 1;
                    while p < close && file.text(code[p]) != "|" {
                        p += 1;
                    }
                    roots.push((code[p + 1], code[close]));
                    break;
                }
            }
            k += 1;
        }
    }

    // Free functions defined in this file, for same-file traversal.
    let local: Vec<&FnItem> = file.fns.iter().filter(|f| f.body.0 < f.body.1).collect();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<(usize, usize, String)> =
        roots.iter().map(|&(s, e)| (s, e, "a spawned closure".to_string())).collect();
    let mut sites: BTreeSet<(u32, String)> = BTreeSet::new();

    while let Some((start, end, origin)) = queue.pop() {
        let span: Vec<usize> =
            code.iter().copied().filter(|&ti| ti >= start && ti < end && !shielded(ti)).collect();
        for (w, &ti) in span.iter().enumerate() {
            let text = file.text(ti);
            // `.unwrap(` / `.expect(`
            if (text == "unwrap" || text == "expect")
                && w > 0
                && file.text(span[w - 1]) == "."
                && span.get(w + 1).is_some_and(|&j| file.text(j) == "(")
            {
                sites.insert((
                    file.tokens[ti].line,
                    format!(
                        "`.{text}(..)` in {origin} can kill the worker thread; recover through \
                         `catch_unwind` or return a typed error"
                    ),
                ));
            }
            // Indexing: ident immediately followed by `[`.
            if file.tokens[ti].kind == TokenKind::Ident
                && span.get(w + 1).is_some_and(|&j| {
                    file.text(j) == "[" && file.tokens[j].start == file.tokens[ti].end
                })
            {
                sites.insert((
                    file.tokens[ti].line,
                    format!(
                        "slice indexing of `{text}` in {origin} can panic; use `.get(..)` or \
                         recover through `catch_unwind`"
                    ),
                ));
            }
            // Same-file free-function call: traverse.
            if file.tokens[ti].kind == TokenKind::Ident
                && span.get(w + 1).is_some_and(|&j| file.text(j) == "(")
                && (w == 0 || file.text(span[w - 1]) != ".")
            {
                if let Some(callee) = local.iter().find(|f| f.name == text) {
                    if visited.insert(text.to_string()) {
                        queue.push((
                            callee.body.0,
                            callee.body.1,
                            format!("`{text}` (reached from a spawned closure)"),
                        ));
                    }
                }
            }
        }
    }
    for (line, msg) in sites {
        report.push(DiagCode::PanicInWorker, file.site(line), msg);
    }
}

/// Index (into `code`) of the `)` matching the `(` at `code[open]`.
pub(crate) fn match_paren(file: &SourceFile, code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(open) {
        match file.text(ti) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs every source-level pass — AD0110, AD0111, AD0112, AD0113,
/// AD0200 (lock order), AD0201, AD0202, AD0203 — over the workspace
/// rooted at `root` and merges the findings into one report.
#[must_use]
pub fn lint_source_all(root: &Path) -> Report {
    let mut report = Report::new();
    report.merge(lint_kernel_callsites(root));
    report.merge(lint_backend_callsites(root));
    report.merge(lint_panicking_callsites(root));
    report.merge(lint_deprecated_condition_api(root));
    report.merge(crate::lockorder::lint_lock_order(root));
    report.merge(lint_atomic_orderings(root));
    report.merge(lint_nondeterminism(root));
    report.merge(lint_worker_panics(root));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    #[test]
    fn flags_serial_kernel_calls_outside_the_tensor_crate() {
        let root = std::env::temp_dir().join("aero_source_lint_fixture");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/vision/src/vae.rs"),
            "fn f(a: &Tensor, b: &Tensor) -> Tensor {\n    a.matmul_serial(b)\n}\n",
        );
        write(
            &root.join("crates/tensor/src/ops.rs"),
            "pub fn matmul_serial() {}\npub fn conv2d_serial() {}\n",
        );
        write(
            &root.join("crates/nn/src/layers.rs"),
            "// matmul_serial is only mentioned in this comment\nfn ok() {}\n",
        );
        write(
            &root.join("crates/nn/tests/equiv.rs"),
            "fn oracle(a: &Tensor, b: &Tensor) -> Tensor { a.matmul_serial(b) }\n",
        );
        let report = lint_kernel_callsites(&root);
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.has_code(DiagCode::SerialKernelBypass));
        let site = &report.diagnostics()[0].site;
        assert!(site.contains("vae.rs:2"), "unexpected site {site}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn string_literals_no_longer_trip_the_kernel_scan() {
        // The regression the tokenizer port fixes: the kernel name inside
        // a string or raw string used to be flagged by the line scan.
        let root = std::env::temp_dir().join("aero_source_lint_strings");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/vision/src/names.rs"),
            "const ORACLE: &str = \"matmul_serial\";\n\
             const DOC: &str = r#\"call conv2d_serial for the oracle\"#;\n\
             fn describe(x: &Tensor) { let _ = x; /* matmul_serial */ }\n",
        );
        let report = lint_kernel_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.diagnostics().len(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flags_concrete_backend_use_outside_the_tensor_crate() {
        let root = std::env::temp_dir().join("aero_backend_lint_fixture");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/nn/src/linear.rs"),
            "fn f(a: &[f32], b: &[f32], out: &mut [f32]) {\n    \
             BlockedBackend.matmul_slab(a, b, 4, 4, out)\n}\n",
        );
        write(
            &root.join("crates/tensor/src/backend.rs"),
            "pub struct ReferenceBackend;\npub struct BlockedBackend;\n",
        );
        // Policy selection is the sanctioned surface: never flagged.
        write(
            &root.join("crates/serve/src/runtime.rs"),
            "fn g() {\n    aero_tensor::backend::set_global_backend(BackendKind::Blocked);\n}\n\
             // BlockedBackend may appear in comments\n\
             const DOC: &str = \"ReferenceBackend is the oracle\";\n",
        );
        write(
            &root.join("crates/nn/tests/equiv.rs"),
            "fn oracle() { ReferenceBackend.softmax_slab(&mut [], 0); }\n",
        );
        let report = lint_backend_callsites(&root);
        assert_eq!(report.error_count(), 2, "{}", report.render());
        assert!(report.has_code(DiagCode::BackendBypass));
        for d in report.diagnostics() {
            assert!(d.site.contains("linear.rs:2"), "unexpected site {}", d.site);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_is_clean() {
        let report = lint_kernel_callsites(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
        assert_eq!(report.diagnostics().len(), 0);
        let report = lint_panicking_callsites(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
        let report = lint_backend_callsites(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
        let report = lint_source_all(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
    }

    #[test]
    fn flags_panicking_kernels_in_serving_crates_only() {
        let root = std::env::temp_dir().join("aero_panicking_lint_fixture");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/serve/src/worker.rs"),
            "fn f(a: &Tensor, b: &Tensor) -> Tensor {\n    a.matmul(b)\n}\n",
        );
        write(
            &root.join("crates/core/src/pipeline.rs"),
            "fn g(x: &Tensor) -> Result<Tensor> {\n    x.try_softmax_last_axis()\n}\n\
             // a comment may mention .bmm( freely\n\
             const HELP: &str = \"call .conv2d( with a square kernel\";\n\
             #[cfg(test)]\nmod tests {\n    fn t(x: &Tensor) { x.bmm(x); }\n}\n",
        );
        // Model crates keep the panicking convention; only serving
        // crates are in scope.
        write(
            &root.join("crates/nn/src/layers.rs"),
            "fn h(a: &Tensor, b: &Tensor) -> Tensor { a.matmul(b) }\n",
        );
        let report = lint_panicking_callsites(&root);
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.has_code(DiagCode::PanickingKernelCall));
        let site = &report.diagnostics()[0].site;
        assert!(site.contains("worker.rs:2"), "unexpected site {site}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flags_deprecated_condition_shim_callers_outside_the_defining_file() {
        let root = std::env::temp_dir().join("aero_deprecated_cond_fixture");
        let _ = fs::remove_dir_all(&root);
        // The defining file hosts the shim's own forwarding body: exempt.
        write(
            &root.join("crates/core/src/pipeline.rs"),
            "pub fn encode_condition(&self) -> Tensor {\n    \
             self.encode_task(&TaskSpec::text(item, g, gp))\n}\n",
        );
        // A production caller anywhere else is flagged once per call.
        write(
            &root.join("crates/serve/src/runtime.rs"),
            "fn prep(p: &Pipeline) -> Tensor {\n    p.encode_condition(&item, &g, &gp)\n}\n\
             // .encode_condition( in a comment never matches\n\
             const DOC: &str = \".encode_condition(\";\n",
        );
        // Test modules exercise the shim deliberately; the tokenizer
        // truncates them away.
        write(
            &root.join("crates/core/src/other.rs"),
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
             fn t(p: &Pipeline) { p.encode_condition(&i, &a, &b); }\n}\n",
        );
        let report = lint_deprecated_condition_api(&root);
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.has_code(DiagCode::DeprecatedConditionApi));
        let site = &report.diagnostics()[0].site;
        assert!(site.contains("runtime.rs:2"), "unexpected site {site}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn this_workspace_is_off_the_deprecated_condition_shim() {
        // AD0113 on the real tree: every workspace caller migrated to
        // `TaskSpec` + `encode_task`; only the shim's definition remains.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_deprecated_condition_api(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_has_no_bypasses() {
        // The real tree must stay clean: production code goes through
        // the sharded kernels only.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_kernel_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_routes_through_backend_dispatch() {
        // AD0112 on the real tree: no caller outside the tensor crate
        // hard-wires a concrete compute backend.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_backend_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_serves_through_fallible_kernels() {
        // Serving crates must reach shape-checked tensor ops through
        // their `try_*` forms only (AD0111).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_panicking_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_has_no_unprotected_worker_panics() {
        // AD0203 on the real tree must be clean: every panic site in a
        // worker closure is either fixed or behind catch_unwind.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_worker_panics(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_determinism_crates_are_annotated() {
        // AD0202 on the real tree: the only accepted nondeterminism
        // sources carry `nondet-ok` annotations.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_nondeterminism(&root);
        assert_eq!(report.diagnostics().len(), 0, "{}", report.render());
    }
}
