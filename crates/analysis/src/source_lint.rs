//! Source-level lints over the workspace tree.
//!
//! Two passes share the same comment-skipping line scan:
//!
//! - **Serial reference-kernel bypasses** ([`AD0110`]).
//!   `aero_tensor::ops` keeps `matmul_serial` / `conv2d_serial` around
//!   as the bit-exact oracles the parallel-equivalence tests compare
//!   against. Production code must never call them: it would silently
//!   forfeit the sharded kernel layer on the hot path. This pass greps
//!   the workspace sources (excluding the tensor crate itself, test and
//!   bench trees, and vendored shims) and reports every call site.
//! - **Panicking kernels on serving paths** ([`AD0111`]). Every
//!   shape-checked tensor op has a `try_*` variant returning
//!   `TensorError`; long-lived serving code (`aero-serve` and the core
//!   pipeline crate) must use those so a malformed request surfaces as
//!   a typed reply instead of killing a worker thread. This pass flags
//!   direct calls of the panicking forms inside those crates.
//!
//! [`AD0110`]: crate::DiagCode::SerialKernelBypass
//! [`AD0111`]: crate::DiagCode::PanickingKernelCall

use crate::diag::{DiagCode, Report};
use std::fs;
use std::path::{Path, PathBuf};

/// Names of the serial reference kernels that only the tensor crate's
/// own tests may call.
const SERIAL_KERNELS: [&str; 2] = ["matmul_serial", "conv2d_serial"];

/// Path components that exempt a file: the tensor crate (where the
/// oracles live), test/bench trees (which compare against them by
/// design), vendored shims, build output, and this pass itself (whose
/// string literals necessarily name the kernels).
const EXEMPT_COMPONENTS: [&str; 6] =
    ["tensor", "tests", "benches", "shims", "target", "source_lint.rs"];

fn is_exempt(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str().is_some_and(|name| EXEMPT_COMPONENTS.contains(&name)))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if is_exempt(&path) {
            continue;
        }
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

fn lint_file(path: &Path, root: &Path, report: &mut Report) {
    let Ok(text) = fs::read_to_string(path) else { return };
    let shown = path.strip_prefix(root).unwrap_or(path).display().to_string();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        // Doc and line comments may *mention* the serial kernels freely.
        if trimmed.starts_with("//") {
            continue;
        }
        for kernel in SERIAL_KERNELS {
            if trimmed.contains(kernel) {
                report.push(
                    DiagCode::SerialKernelBypass,
                    format!("{shown}:{}", idx + 1),
                    format!(
                        "`{kernel}` is a test-only reference oracle; \
                         call the parallel entry point instead"
                    ),
                );
            }
        }
    }
}

/// Scans the workspace rooted at `root` for production call sites of the
/// serial reference kernels, reporting each as `AD0110`.
///
/// Walks `crates/*/src` and the top-level `src/`, skipping the tensor
/// crate, `tests/`/`benches/` trees, `shims/`, and `target/`. Missing
/// directories are silently ignored, so the lint is a no-op when run
/// away from a source checkout.
#[must_use]
pub fn lint_kernel_callsites(root: &Path) -> Report {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members {
            if !is_exempt(&member) {
                rust_files_under(&member.join("src"), &mut files);
            }
        }
    }
    rust_files_under(&root.join("src"), &mut files);
    let mut report = Report::new();
    for file in &files {
        lint_file(file, root, &mut report);
    }
    report
}

/// Panicking tensor ops that have a `try_*` twin, written as the method
/// call tokens the scan looks for. `.matmul(` does not match
/// `.try_matmul(` (the preceding character is `_`) or `.matmul_serial(`
/// (the following character is not `(`).
const PANICKING_KERNELS: [&str; 10] = [
    ".matmul(",
    ".bmm(",
    ".conv2d(",
    ".im2col(",
    ".col2im(",
    ".conv_transpose2d(",
    ".avg_pool2d(",
    ".max_pool2d(",
    ".upsample_nearest2x(",
    ".softmax_last_axis(",
];

/// The crates whose `src/` trees count as long-lived serving paths: a
/// shape panic there takes a worker thread (or the whole server) down
/// instead of failing one request.
const SERVING_CRATES: [&str; 2] = ["serve", "core"];

fn lint_panicking_file(path: &Path, root: &Path, report: &mut Report) {
    let Ok(text) = fs::read_to_string(path) else { return };
    let shown = path.strip_prefix(root).unwrap_or(path).display().to_string();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        // In-file unit tests exercise panicking forms deliberately;
        // everything after the test-module marker is out of scope.
        if trimmed.starts_with("#[cfg(test)]") {
            return;
        }
        for kernel in PANICKING_KERNELS {
            if trimmed.contains(kernel) {
                let name = &kernel[1..kernel.len() - 1];
                report.push(
                    DiagCode::PanickingKernelCall,
                    format!("{shown}:{}", idx + 1),
                    format!(
                        "`{name}` panics on shape mismatch; serving paths must call \
                         `try_{name}` and turn the error into a typed reply"
                    ),
                );
            }
        }
    }
}

/// Scans the long-lived serving crates (`crates/serve`, `crates/core`)
/// for direct calls of panicking tensor kernels that have `try_*`
/// variants, reporting each as `AD0111`.
///
/// Missing directories are silently ignored, so the lint is a no-op when
/// run away from a source checkout.
#[must_use]
pub fn lint_panicking_callsites(root: &Path) -> Report {
    let mut files = Vec::new();
    for member in SERVING_CRATES {
        // `core` sits on the AD0110 walk too, but this pass owns its own
        // file list so the two lints stay independently callable.
        rust_files_under(&root.join("crates").join(member).join("src"), &mut files);
    }
    files.sort();
    let mut report = Report::new();
    for file in &files {
        lint_panicking_file(file, root, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    #[test]
    fn flags_serial_kernel_calls_outside_the_tensor_crate() {
        let root = std::env::temp_dir().join("aero_source_lint_fixture");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/vision/src/vae.rs"),
            "fn f(a: &Tensor, b: &Tensor) -> Tensor {\n    a.matmul_serial(b)\n}\n",
        );
        write(
            &root.join("crates/tensor/src/ops.rs"),
            "pub fn matmul_serial() {}\npub fn conv2d_serial() {}\n",
        );
        write(
            &root.join("crates/nn/src/layers.rs"),
            "// matmul_serial is only mentioned in this comment\nfn ok() {}\n",
        );
        write(
            &root.join("crates/nn/tests/equiv.rs"),
            "fn oracle(a: &Tensor, b: &Tensor) -> Tensor { a.matmul_serial(b) }\n",
        );
        let report = lint_kernel_callsites(&root);
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.has_code(DiagCode::SerialKernelBypass));
        let site = &report.diagnostics()[0].site;
        assert!(site.contains("vae.rs:2"), "unexpected site {site}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_is_clean() {
        let report = lint_kernel_callsites(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
        assert_eq!(report.diagnostics().len(), 0);
        let report = lint_panicking_callsites(Path::new("/nonexistent/aero_source_lint_nowhere"));
        assert!(report.is_clean());
    }

    #[test]
    fn flags_panicking_kernels_in_serving_crates_only() {
        let root = std::env::temp_dir().join("aero_panicking_lint_fixture");
        let _ = fs::remove_dir_all(&root);
        write(
            &root.join("crates/serve/src/worker.rs"),
            "fn f(a: &Tensor, b: &Tensor) -> Tensor {\n    a.matmul(b)\n}\n",
        );
        write(
            &root.join("crates/core/src/pipeline.rs"),
            "fn g(x: &Tensor) -> Result<Tensor> {\n    x.try_softmax_last_axis()\n}\n\
             // a comment may mention .bmm( freely\n\
             #[cfg(test)]\nmod tests {\n    fn t(x: &Tensor) { x.bmm(x); }\n}\n",
        );
        // Model crates keep the panicking convention; only serving
        // crates are in scope.
        write(
            &root.join("crates/nn/src/layers.rs"),
            "fn h(a: &Tensor, b: &Tensor) -> Tensor { a.matmul(b) }\n",
        );
        let report = lint_panicking_callsites(&root);
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.has_code(DiagCode::PanickingKernelCall));
        let site = &report.diagnostics()[0].site;
        assert!(site.contains("worker.rs:2"), "unexpected site {site}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn this_workspace_has_no_bypasses() {
        // The real tree must stay clean: production code goes through
        // the sharded kernels only.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_kernel_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn this_workspace_serves_through_fallible_kernels() {
        // Serving crates must reach shape-checked tensor ops through
        // their `try_*` forms only (AD0111).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_panicking_callsites(&root);
        assert!(report.is_clean(), "{}", report.render());
    }
}
