//! Deterministic fault injection for the serving runtime.
//!
//! Robustness claims that are only exercised by real crashes are
//! untestable claims. A [`FaultPlan`] maps request *ordinals* (the Nth
//! request ever submitted to the runtime, counted from 0) to [`Fault`]s;
//! the worker loop consults the plan at well-defined points and triggers
//! the scheduled failure exactly once. Because ordinals are assigned at
//! submission and the plan is fixed up front, a test run with a given
//! plan and given request seeds is fully reproducible — the same worker
//! dies on the same request every time, no sleeps or signal races.
//!
//! Production runtimes simply pass no plan; every injection site then
//! compiles down to a `None` check on an absent `Arc`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// One injectable failure, attached to a specific request ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the per-request serving path. The worker catches it,
    /// answers this request with a typed `worker_error`, finishes the
    /// rest of its batch, then exits and is respawned by the watchdog.
    PanicRequest,
    /// Kill the whole worker thread while it holds this request's batch.
    /// The worker requeues the *entire* batch (including this request)
    /// before dying, so a respawned worker serves every one of them —
    /// the fault fires once, so the retry goes through clean.
    KillWorker,
    /// Overwrite this request's sampled latents with NaN. The worker's
    /// output guard must detect the non-finite tensor and answer with a
    /// typed `worker_error` instead of decoding garbage.
    NanLatents,
    /// Poison this request's condition-cache entry with NaN after it is
    /// computed. A later request hitting that entry must detect the
    /// corruption, evict it, and recompute.
    CorruptCacheEntry,
    /// Stall this request's preparation for the given number of
    /// milliseconds (exercises deadline expiry and batch coalescing).
    DelayMs(u64),
    /// Kill the *entire replica group* serving this request: the worker
    /// that draws the fault marks the group down in the router, flips the
    /// group's kill flag (aborting its sibling workers' pops), re-routes
    /// its own in-flight batch onto surviving groups, and dies. The
    /// supervisor then drains stragglers, clears the group's condition
    /// cache, respawns every worker from the snapshot, and marks the
    /// group back up — with zero dropped requests throughout.
    KillReplica,
    /// Poison this replica group's condition-cache mutex (a helper thread
    /// takes the lock and panics while holding it). Workers recover the
    /// poisoned lock and keep serving; the router never stalls.
    PoisonCacheLock,
}

/// One injectable failure on the model hot-swap control path, attached
/// to a *swap* ordinal (the Nth swap attempted on the runtime, counted
/// from 0) rather than a request ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapFault {
    /// Flip a byte of the resolved artifact's bytes after they are read
    /// from the registry but before they are parsed. The artifact's
    /// trailing CRC must reject the corruption, the swap must fail with
    /// a typed error, and the previously installed model must keep
    /// serving every in-flight and subsequent request.
    CorruptArtifact,
}

/// A fixed schedule of faults keyed by request ordinal (plus swap faults
/// keyed by swap ordinal). Shared across workers; each scheduled fault
/// fires exactly once.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<HashMap<u64, Fault>>,
    swap_faults: Mutex<HashMap<u64, SwapFault>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: schedules `fault` for the request with this submission
    /// ordinal, replacing any fault already scheduled there.
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    #[must_use]
    pub fn inject(self, ordinal: u64, fault: Fault) -> Self {
        self.schedule(ordinal, fault);
        self
    }

    /// Schedules (or re-schedules) a fault on a shared plan. The worker
    /// loop uses this to hand non-kill faults back when a [`Fault::KillWorker`]
    /// requeues the batch they were taken with, so they still fire on the
    /// retried requests.
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    pub fn schedule(&self, ordinal: u64, fault: Fault) {
        self.faults.lock().expect("fault plan lock").insert(ordinal, fault);
    }

    /// A reproducible pseudo-random plan over ordinals `0..horizon`:
    /// roughly one request in four draws a fault, cycling through every
    /// fault kind. The same seed always yields the same plan.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for ordinal in 0..horizon {
            if !rng.gen_bool(0.25) {
                continue;
            }
            let fault = match rng.gen_range(0..5u32) {
                0 => Fault::PanicRequest,
                1 => Fault::KillWorker,
                2 => Fault::NanLatents,
                3 => Fault::CorruptCacheEntry,
                _ => Fault::DelayMs(rng.gen_range(1..20u64)),
            };
            plan = plan.inject(ordinal, fault);
        }
        plan
    }

    /// Takes the fault scheduled for `ordinal`, if any. Removal makes
    /// every fault one-shot: a request retried after a `KillWorker` does
    /// not re-trigger it.
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    pub fn take(&self, ordinal: u64) -> Option<Fault> {
        self.faults.lock().expect("fault plan lock").remove(&ordinal)
    }

    /// Builder: schedules a [`Fault::KillReplica`] for the request with
    /// this submission ordinal — shorthand for the most common
    /// fleet-robustness scenario.
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    #[must_use]
    pub fn inject_replica_kill(self, ordinal: u64) -> Self {
        self.inject(ordinal, Fault::KillReplica)
    }

    /// Builder: schedules `fault` for the swap attempt with this ordinal
    /// (the Nth call to the runtime's swap entry point, from 0).
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    #[must_use]
    pub fn inject_swap(self, ordinal: u64, fault: SwapFault) -> Self {
        self.swap_faults.lock().expect("fault plan lock").insert(ordinal, fault);
        self
    }

    /// Takes the fault scheduled for swap attempt `ordinal`, if any.
    /// One-shot, like request faults: a retried swap goes through clean.
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    pub fn take_swap(&self, ordinal: u64) -> Option<SwapFault> {
        self.swap_faults.lock().expect("fault plan lock").remove(&ordinal)
    }

    /// Faults still waiting to fire (request and swap faults combined).
    ///
    /// # Panics
    ///
    /// Panics if the plan mutex was poisoned.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.faults.lock().expect("fault plan lock").len()
            + self.swap_faults.lock().expect("fault plan lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new().inject(3, Fault::PanicRequest);
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.take(0), None);
        assert_eq!(plan.take(3), Some(Fault::PanicRequest));
        assert_eq!(plan.take(3), None, "a taken fault must not re-fire");
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn inject_replica_kill_is_a_one_shot_kill_replica() {
        let plan = FaultPlan::new().inject_replica_kill(2);
        assert_eq!(plan.take(2), Some(Fault::KillReplica));
        assert_eq!(plan.take(2), None, "replica kills must not re-fire on the retry");
    }

    #[test]
    fn inject_replaces_an_existing_fault() {
        let plan = FaultPlan::new().inject(1, Fault::KillWorker).inject(1, Fault::NanLatents);
        assert_eq!(plan.take(1), Some(Fault::NanLatents));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_nonempty() {
        let a = FaultPlan::seeded(42, 64);
        let b = FaultPlan::seeded(42, 64);
        assert!(a.remaining() > 0, "64 ordinals at ~25% must schedule something");
        assert_eq!(a.remaining(), b.remaining());
        for ordinal in 0..64 {
            assert_eq!(a.take(ordinal), b.take(ordinal), "plans diverged at {ordinal}");
        }
    }

    #[test]
    fn swap_faults_are_one_shot_and_independent_of_request_faults() {
        let plan = FaultPlan::new()
            .inject(0, Fault::PanicRequest)
            .inject_swap(0, SwapFault::CorruptArtifact);
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.take_swap(1), None);
        assert_eq!(plan.take_swap(0), Some(SwapFault::CorruptArtifact));
        assert_eq!(plan.take_swap(0), None, "a taken swap fault must not re-fire");
        assert_eq!(plan.take(0), Some(Fault::PanicRequest), "request faults untouched");
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::seeded(1, 256);
        let b = FaultPlan::seeded(2, 256);
        let differs = (0..256).any(|o| a.take(o) != b.take(o));
        assert!(differs, "256 ordinals from different seeds should not collide entirely");
    }
}
