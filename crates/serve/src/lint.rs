//! Static shape lint for the serving configuration.
//!
//! Extends the pipeline shape program with the batcher's contribution:
//! the micro-batcher concatenates `max_batch` per-request `[1, cond_dim]`
//! condition rows on axis 0 and feeds the result to the UNet, so the
//! coalesced tensor must land exactly on `[max_batch, cond_dim]` for the
//! UNet configuration the pipeline would realise. This is checked
//! symbolically — no model is built — so `lint --all` catches a serving
//! misconfiguration before anything trains.

use aero_analysis::{Report, ShapeCtx};
use aero_tensor::sym::ShapeSpec;
use aerodiffusion::lint::{pipeline_desc, unet_config};
use aerodiffusion::PipelineConfig;

use crate::runtime::ServeConfig;

/// Statically validates a serving setup on top of the pipeline lint.
#[must_use]
pub fn lint_serve(config: &PipelineConfig, serve: &ServeConfig) -> Report {
    let mut ctx = ShapeCtx::new();
    pipeline_desc(config).check(&mut ctx);
    let unet = unet_config(config);
    ctx.scoped("serve", |ctx| {
        ctx.require(
            serve.max_batch > 0,
            aero_analysis::DiagCode::ShapeMismatch,
            "max_batch must be positive",
        );
        ctx.scoped("batcher", |ctx| {
            let row = ShapeSpec::fixed(&[1, unet.cond_dim]);
            let rows: Vec<&ShapeSpec> = (0..serve.max_batch.max(1)).map(|_| &row).collect();
            if let Some(coalesced) = ctx.concat(&rows, 0) {
                ctx.require_same_shape(
                    &coalesced,
                    &ShapeSpec::fixed(&[serve.max_batch.max(1), unet.cond_dim]),
                    "coalesced condition batch fed to the UNet",
                );
            }
        });
    });
    ctx.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_lint_clean_with_default_serving() {
        for (name, config) in [
            ("paper", PipelineConfig::paper()),
            ("small", PipelineConfig::small()),
            ("smoke", PipelineConfig::smoke()),
        ] {
            let serve = ServeConfig::for_pipeline(&config);
            let report = lint_serve(&config, &serve);
            assert!(report.is_clean(), "{name} preset:\n{}", report.render());
        }
    }

    #[test]
    fn zero_max_batch_is_flagged() {
        let config = PipelineConfig::smoke();
        let mut serve = ServeConfig::for_pipeline(&config);
        serve.max_batch = 0;
        let report = lint_serve(&config, &serve);
        assert!(!report.is_clean());
    }
}
