//! The serving runtime: a supervised worker pool over one immutable
//! trained pipeline, fed by the bounded queue and the dynamic
//! micro-batcher.
//!
//! The trained pipeline itself is not shareable across threads (its
//! parameters live in `Rc`-backed autograd nodes), so the runtime ships a
//! [`PipelineSnapshot`] — plain bytes — to every worker and each worker
//! hydrates a private replica once at startup. That is the standard
//! immutable-weights / many-replicas deployment shape: weights are frozen
//! at snapshot time, so replicas are exact clones and any worker may
//! serve any request.
//!
//! Determinism contract: a request's image depends only on its own
//! `(prompt, seed, steps, guidance)`. Each request's initial latent is
//! drawn from a private `StdRng` seeded with the request seed, and the
//! DDIM reverse process is row-independent, so coalescing requests into
//! one `[n, c, h, w]` sampler call changes throughput, never bytes.
//!
//! Fault-tolerance contract: one bad request must never take the service
//! down, and one dead worker must never strand queued work.
//!
//! - Per-request preparation runs under `catch_unwind`; a panic answers
//!   *that* request with a typed `worker_error` reply while the rest of
//!   the batch is still served. The worker that caught the panic is
//!   treated as suspect: it finishes its batch, exits, and the watchdog
//!   respawns a fresh replica in its place (up to
//!   [`ServeConfig::max_worker_restarts`]).
//! - A worker that dies outright hands its unserved batch back to the
//!   front of the queue first, so the replacement worker — or any
//!   surviving peer — finishes it with zero dropped replies.
//! - Sampler outputs are checked for non-finite values before decode;
//!   a NaN latent becomes a typed reply, never a garbage image.
//! - Cached condition embeddings are validated on every hit; a corrupt
//!   entry is evicted, counted, and recomputed.
//! - If every worker is gone and no restarts remain, the watchdog drains
//!   the queue and rejects each request with a typed reason instead of
//!   hanging the clients forever.
//!
//! All of these paths are driven deterministically in tests by a
//! [`FaultPlan`] (see [`crate::fault`]); production runtimes pass none.

use crate::cache::{ConditionCache, ConditionKey};
use crate::fault::{Fault, FaultPlan};
use crate::queue::{Pending, RequestQueue};
use crate::request::{GenerateRequest, GeneratedImage, RejectReason, ServeReply, StageLatency};
use crate::stats::{StatsCollector, StatsReport};
use aero_diffusion::DdimSampler;
use aero_scene::{build_dataset, DatasetConfig, DatasetItem, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each holding one pipeline replica.
    pub workers: usize,
    /// Most requests coalesced into one sampler call.
    pub max_batch: usize,
    /// Bounded queue capacity; beyond it submissions are rejected.
    pub queue_capacity: usize,
    /// How long a worker lingers for stragglers to fill a batch.
    pub batch_wait: Duration,
    /// Condition-embedding LRU capacity (entries).
    pub cache_capacity: usize,
    /// Default DDIM steps (requests may override per call).
    pub steps: usize,
    /// Default guidance scale (requests may override per call).
    pub guidance_scale: f32,
    /// Seed of the reference scene used as the conditioning exemplar.
    pub reference_seed: u64,
    /// Total worker respawns the watchdog may perform over the runtime's
    /// life before it stops replacing dead workers.
    pub max_worker_restarts: usize,
}

impl ServeConfig {
    /// Defaults matched to a trained pipeline's own sampler settings.
    #[must_use]
    pub fn for_pipeline(config: &PipelineConfig) -> Self {
        ServeConfig {
            workers: aero_tensor::parallel::suggested_threads(2),
            max_batch: 8,
            queue_capacity: 32,
            batch_wait: Duration::from_millis(2),
            cache_capacity: 64,
            steps: config.diffusion.ddim_steps,
            guidance_scale: config.diffusion.guidance_scale,
            reference_seed: 0,
            max_worker_restarts: 4,
        }
    }
}

/// Handle for one submitted request; resolves to exactly one reply.
#[derive(Debug)]
pub struct ResponseHandle {
    id: String,
    rx: Receiver<ServeReply>,
    stats: Arc<StatsCollector>,
}

impl ResponseHandle {
    /// The request id this handle resolves.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Blocks until the reply arrives. A worker that died without
    /// answering surfaces as a typed [`RejectReason::WorkerFailure`].
    #[must_use]
    pub fn wait(self) -> ServeReply {
        match self.rx.recv() {
            Ok(reply) => {
                if let ServeReply::Rejected { reason, .. } = &reply {
                    self.stats.record_rejected(reason);
                }
                reply
            }
            Err(_) => {
                let reason = RejectReason::WorkerFailure;
                self.stats.record_rejected(&reason);
                ServeReply::Rejected { id: self.id, reason }
            }
        }
    }
}

/// Everything a worker shares with its peers and the watchdog.
#[derive(Clone)]
struct WorkerShared {
    queue: Arc<RequestQueue>,
    cache: Arc<Mutex<ConditionCache>>,
    stats: Arc<StatsCollector>,
    faults: Option<Arc<FaultPlan>>,
}

/// How a worker thread ended, as seen by the watchdog. A thread that
/// panicked instead of returning shows up as `Err` from `join`.
enum WorkerOutcome {
    /// Clean exit: the queue drained out under shutdown.
    Drained,
    /// The snapshot would not hydrate. Deterministic — the same bytes
    /// fail the same way — so the watchdog does not burn restarts on it.
    HydrationFailed,
    /// The worker caught an in-request panic, answered it with a typed
    /// reply, finished its batch, and exited so a fresh replica can take
    /// its slot.
    Suspect,
}

/// The running worker pool. Dropping it without [`ServeRuntime::shutdown`]
/// leaks the workers; always shut down for a graceful drain.
#[derive(Debug)]
pub struct ServeRuntime {
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    next_ordinal: AtomicU64,
    watchdog: JoinHandle<()>,
}

impl ServeRuntime {
    /// Spawns `config.workers` threads, each hydrating a replica from the
    /// snapshot, plus a watchdog that respawns dead workers, and starts
    /// serving.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`, `config.max_batch == 0`, or a
    /// thread cannot be spawned. A snapshot that fails to hydrate does
    /// *not* panic: the affected workers exit with a typed failure
    /// recorded in stats, and queued requests are rejected with
    /// `worker_error` once no worker remains.
    #[must_use]
    pub fn start(snapshot: PipelineSnapshot, config: ServeConfig) -> Self {
        ServeRuntime::start_with_faults(snapshot, config, None)
    }

    /// [`ServeRuntime::start`], plus a deterministic [`FaultPlan`] the
    /// workers consult per request. Tests use this to trigger panics,
    /// worker deaths, NaN outputs and cache corruption on exact requests.
    ///
    /// # Panics
    ///
    /// As [`ServeRuntime::start`].
    #[must_use]
    pub fn start_with_faults(
        snapshot: PipelineSnapshot,
        config: ServeConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(config.workers > 0, "serve runtime needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let snapshot = Arc::new(snapshot);
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let stats = Arc::new(StatsCollector::new());
        let shared = WorkerShared {
            queue: Arc::clone(&queue),
            cache: Arc::new(Mutex::new(ConditionCache::new(config.cache_capacity))),
            stats: Arc::clone(&stats),
            faults,
        };
        let mut slots: Vec<Option<JoinHandle<WorkerOutcome>>> = (0..config.workers)
            .map(|i| {
                let handle = spawn_worker(i, 0, Arc::clone(&snapshot), shared.clone(), config)
                    .expect("spawn serve worker");
                Some(handle)
            })
            .collect();
        let watchdog = std::thread::Builder::new()
            .name("aero-serve-watchdog".into())
            .spawn(move || watchdog_loop(&snapshot, &shared, config, &mut slots))
            .expect("spawn serve watchdog");
        ServeRuntime { queue, stats, next_ordinal: AtomicU64::new(0), watchdog }
    }

    /// Enqueues a request, returning a handle for its reply.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] under backpressure,
    /// [`RejectReason::ShuttingDown`] once a drain began (including the
    /// terminal drain after every worker died).
    pub fn submit(&self, request: GenerateRequest) -> Result<ResponseHandle, RejectReason> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let id = request.id.clone();
        let deadline = request.deadline.map(|d| now + d);
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::SeqCst);
        let pending = Pending { request, ordinal, enqueued: now, deadline, responder: tx };
        match self.queue.push(pending) {
            Ok(()) => {
                self.stats.set_queue_depth(self.queue.len());
                Ok(ResponseHandle { id, rx, stats: Arc::clone(&self.stats) })
            }
            Err(reason) => {
                self.stats.record_rejected(&reason);
                Err(reason)
            }
        }
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A point-in-time statistics report.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// The unified metric snapshot: this runtime's serving counters
    /// merged with the process-global ambient metrics (tensor kernels,
    /// sampler spans, training counters).
    #[must_use]
    pub fn metrics(&self) -> aero_obs::MetricsSnapshot {
        self.stats.metrics_snapshot()
    }

    /// Graceful drain: stops admitting work, lets the workers finish
    /// everything already queued, joins them, and returns final stats.
    #[must_use]
    pub fn shutdown(self) -> StatsReport {
        self.queue.begin_shutdown();
        let _ = self.watchdog.join();
        self.stats.report()
    }
}

fn spawn_worker(
    slot: usize,
    generation: usize,
    snapshot: Arc<PipelineSnapshot>,
    shared: WorkerShared,
    config: ServeConfig,
) -> std::io::Result<JoinHandle<WorkerOutcome>> {
    std::thread::Builder::new()
        .name(format!("aero-serve-{slot}.{generation}"))
        .spawn(move || worker_loop(&snapshot, &shared, config))
}

/// Supervises the worker slots: joins finished workers, respawns the ones
/// that died (panic or suspect exit) while restarts remain, and — once no
/// worker is left — fails all queued work with a typed reason so clients
/// never hang on a dead pool.
fn watchdog_loop(
    snapshot: &Arc<PipelineSnapshot>,
    shared: &WorkerShared,
    config: ServeConfig,
    slots: &mut [Option<JoinHandle<WorkerOutcome>>],
) {
    let mut restarts = 0usize;
    let mut generation = 0usize;
    loop {
        let mut live = 0usize;
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                let Some(handle) = slot.take() else { continue };
                match handle.join() {
                    Ok(WorkerOutcome::Drained | WorkerOutcome::HydrationFailed) => {}
                    // A worker that died is replaced even mid-shutdown:
                    // its requeued batch still has to be drained, and the
                    // restart budget bounds the loop either way. A failed
                    // respawn leaves the slot empty; the live count below
                    // then treats it like any other dead worker.
                    Ok(WorkerOutcome::Suspect) | Err(_) => {
                        if restarts < config.max_worker_restarts {
                            if let Ok(replacement) = spawn_worker(
                                i,
                                generation + 1,
                                Arc::clone(snapshot),
                                shared.clone(),
                                config,
                            ) {
                                restarts += 1;
                                generation += 1;
                                shared.stats.record_worker_restart();
                                *slot = Some(replacement);
                            }
                        }
                    }
                }
            }
            if slot.is_some() {
                live += 1;
            }
        }
        if live == 0 {
            // Nobody will ever pop again. On a graceful shutdown the queue
            // is already drained and this is a no-op; on a collapsed pool
            // it converts every stranded request into a typed rejection.
            shared.queue.begin_shutdown();
            for pending in shared.queue.drain_all() {
                pending.reject(RejectReason::WorkerError {
                    detail: "no live serving workers remain".into(),
                });
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One worker: hydrate a replica, build the conditioning exemplar, then
/// serve batches until the queue drains out or the worker turns suspect.
fn worker_loop(
    snapshot: &PipelineSnapshot,
    shared: &WorkerShared,
    config: ServeConfig,
) -> WorkerOutcome {
    let Ok(replica) = snapshot.hydrate() else {
        shared.stats.record_hydration_failure();
        return WorkerOutcome::HydrationFailed;
    };
    let reference = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: replica.config().vision.image_size,
        seed: config.reference_seed,
        generator: SceneGeneratorConfig::default(),
    });
    let Some(item) = reference.items.first() else {
        // An empty reference dataset is as unservable as a failed
        // hydration; surface it the same way instead of panicking.
        shared.stats.record_hydration_failure();
        return WorkerOutcome::HydrationFailed;
    };
    // A fixed caption G makes the encode a pure function of the request's
    // prompt (G'), which is what lets the condition cache key on it.
    let caption_g = replica.caption_for(item, &mut StdRng::seed_from_u64(0));
    while let Some(batch) = shared.queue.pop_batch(config.max_batch, config.batch_wait) {
        if !serve_batch(&replica, item, &caption_g, batch, shared, &config) {
            // An in-request panic was caught and answered, but this
            // replica's internal state is no longer above suspicion.
            // Exit after the batch; the watchdog brings up a fresh one.
            return WorkerOutcome::Suspect;
        }
    }
    WorkerOutcome::Drained
}

/// Locks the condition cache, recovering from poison: the cache holds
/// only recomputable embeddings, so a panic in one worker must not
/// cascade lock panics through every survivor.
fn lock_cache(cache: &Mutex<ConditionCache>) -> MutexGuard<'_, ConditionCache> {
    cache.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tensor_is_finite(t: &Tensor) -> bool {
    t.as_slice().iter().all(|v| v.is_finite())
}

/// A request annotated with everything measured before sampling.
struct Job {
    pending: Pending,
    queue_us: u64,
    encode_us: u64,
    cache_hit: bool,
    cond: Tensor,
    /// Injected [`Fault::NanLatents`]: poison this request's latents
    /// after sampling so the output guard has something to catch.
    nan_latents: bool,
}

/// Serves one popped batch: group by sampler settings, encode through the
/// cache, run one coalesced sampler call per group, decode per request.
/// Returns `false` if the worker caught an in-request panic and should be
/// replaced after this batch.
fn serve_batch(
    replica: &AeroDiffusionPipeline,
    item: &DatasetItem,
    caption_g: &str,
    batch: Vec<Pending>,
    shared: &WorkerShared,
    config: &ServeConfig,
) -> bool {
    let dequeued = Instant::now();
    shared.stats.set_queue_depth(shared.queue.len());
    // Pull this batch's scheduled faults up front. KillWorker must fire
    // before any request is served: the whole batch goes back to the
    // queue (so a replacement finishes it), any other faults taken with
    // it are re-scheduled for the retry, and the worker dies the way a
    // real crash would — an uncaught panic.
    let mut batch_faults: HashMap<u64, Fault> = HashMap::new();
    if let Some(plan) = &shared.faults {
        for pending in &batch {
            if let Some(fault) = plan.take(pending.ordinal) {
                batch_faults.insert(pending.ordinal, fault);
            }
        }
        if batch_faults.values().any(|f| matches!(f, Fault::KillWorker)) {
            for (ordinal, fault) in batch_faults {
                if !matches!(fault, Fault::KillWorker) {
                    plan.schedule(ordinal, fault);
                }
            }
            shared.queue.requeue(batch);
            panic!("injected fault: worker killed mid-batch");
        }
    }
    let mut healthy = true;
    // Requests only share a sampler call when they agree on the settings
    // that alter it; override combinations are grouped in arrival order.
    let mut groups: Vec<((usize, u32), Vec<Pending>)> = Vec::new();
    for pending in batch {
        let steps = pending.request.steps.unwrap_or(config.steps).max(1);
        let guidance = pending.request.guidance_scale.unwrap_or(config.guidance_scale);
        let key = (steps, guidance.to_bits());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pending),
            None => groups.push((key, vec![pending])),
        }
    }
    for ((steps, guidance_bits), members) in groups {
        let guidance = f32::from_bits(guidance_bits);
        let sampler = DdimSampler::new(steps, guidance);
        let mut jobs: Vec<Job> = Vec::new();
        for pending in members {
            let fault = batch_faults.remove(&pending.ordinal);
            if let Some(Fault::DelayMs(ms)) = fault {
                std::thread::sleep(Duration::from_millis(ms));
            }
            let queue_us = micros(dequeued.saturating_duration_since(pending.enqueued));
            let started = Instant::now();
            let id = pending.request.id.clone();
            let responder = pending.responder.clone();
            // Everything per-request and fallible runs under the unwind
            // guard: a panic here costs one reply, not the whole batch.
            let prepared = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, Some(Fault::PanicRequest)) {
                    panic!("injected fault: panic while preparing request");
                }
                prepare_condition(
                    replica,
                    item,
                    caption_g,
                    &pending.request,
                    guidance,
                    fault,
                    shared,
                )
            }));
            match prepared {
                Ok((cond, cache_hit)) => jobs.push(Job {
                    pending,
                    queue_us,
                    encode_us: micros(started.elapsed()),
                    cache_hit,
                    cond,
                    nan_latents: matches!(fault, Some(Fault::NanLatents)),
                }),
                Err(_) => {
                    shared.stats.record_worker_panic();
                    healthy = false;
                    let _ = responder.send(ServeReply::Rejected {
                        id,
                        reason: RejectReason::WorkerError {
                            detail: "panic caught while serving this request".into(),
                        },
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        let n = jobs.len();
        shared.stats.record_batch(n);
        let [c, h, w] = replica.latent_shape();
        let conds: Vec<&Tensor> = jobs.iter().map(|j| &j.cond).collect();
        let cond_batch = Tensor::concat(&conds, 0);
        // Each request's private noise stream: same seed, same bytes,
        // whatever else rides in the batch.
        let noise: Vec<Tensor> = jobs
            .iter()
            .map(|j| {
                Tensor::randn(&[1, c, h, w], &mut StdRng::seed_from_u64(j.pending.request.seed))
            })
            .collect();
        let noise_refs: Vec<&Tensor> = noise.iter().collect();
        let z_init = Tensor::concat(&noise_refs, 0);
        let sample_started = Instant::now();
        let z = replica.sample_latents(&sampler, z_init, &cond_batch);
        let sample_us = micros(sample_started.elapsed());
        for (i, job) in jobs.into_iter().enumerate() {
            let decode_started = Instant::now();
            let latent = if job.nan_latents {
                Tensor::full(&[c, h, w], f32::NAN)
            } else {
                z.narrow(0, i, 1).reshape(&[c, h, w])
            };
            // Output guard: never decode (or return) a non-finite latent.
            if !tensor_is_finite(&latent) {
                shared.stats.record_nonfinite_output();
                let _ = job.pending.responder.send(ServeReply::Rejected {
                    id: job.pending.request.id.clone(),
                    reason: RejectReason::WorkerError {
                        detail: "sampler produced non-finite latents".into(),
                    },
                });
                continue;
            }
            let image = replica.decode_latent(&latent);
            let rgb8: Vec<u8> = image
                .to_tensor()
                .as_slice()
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
                .collect();
            let latency = StageLatency {
                queue_us: job.queue_us,
                encode_us: job.encode_us,
                sample_us,
                decode_us: micros(decode_started.elapsed()),
            };
            shared.stats.record_completed(latency, job.cache_hit);
            let reply = ServeReply::Image(GeneratedImage {
                id: job.pending.request.id.clone(),
                width: image.width(),
                height: image.height(),
                rgb8,
                latency,
                batch_size: n,
                cache_hit: job.cache_hit,
            });
            // A client that dropped its handle is gone; nothing to do.
            let _ = job.pending.responder.send(reply);
        }
    }
    healthy
}

/// Resolves one request's condition embedding through the cache,
/// validating cached entries and applying a [`Fault::CorruptCacheEntry`]
/// injection after the fact.
fn prepare_condition(
    replica: &AeroDiffusionPipeline,
    item: &DatasetItem,
    caption_g: &str,
    request: &GenerateRequest,
    guidance: f32,
    fault: Option<Fault>,
    shared: &WorkerShared,
) -> (Tensor, bool) {
    let key = ConditionKey::new(&request.prompt, replica.variant(), guidance);
    // One lock scope for the whole lookup: matching directly on the
    // locked `get` would keep the guard alive across the arms and
    // self-deadlock on the eviction below.
    let cached = {
        let mut cache = lock_cache(&shared.cache);
        match cache.get(&key) {
            Some(cond) if tensor_is_finite(&cond) => Some(cond),
            Some(_) => {
                // A corrupt entry must not poison every future request
                // that shares this prompt: evict, count, recompute below.
                cache.remove(&key);
                drop(cache);
                shared.stats.record_cache_corruption();
                None
            }
            None => None,
        }
    };
    let (cond, cache_hit) = match cached {
        Some(cond) => (cond, true),
        None => {
            let cond = replica.encode_condition(item, caption_g, &request.prompt);
            lock_cache(&shared.cache).insert(key.clone(), cond.clone());
            (cond, false)
        }
    };
    if matches!(fault, Some(Fault::CorruptCacheEntry)) {
        lock_cache(&shared.cache).insert(key, Tensor::full(cond.shape(), f32::NAN));
    }
    (cond, cache_hit)
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_tracks_pipeline_sampler_settings() {
        let pc = PipelineConfig::smoke();
        let sc = ServeConfig::for_pipeline(&pc);
        assert_eq!(sc.steps, pc.diffusion.ddim_steps);
        assert_eq!(sc.guidance_scale, pc.diffusion.guidance_scale);
        assert!(sc.workers >= 1);
        assert!(sc.max_batch >= 1);
        assert!(sc.max_worker_restarts >= 1);
    }
}
