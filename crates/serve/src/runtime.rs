//! The serving runtime: a supervised fleet of replica worker groups over
//! one immutable trained pipeline, fronted by a rendezvous shard router
//! and an admission controller.
//!
//! The trained pipeline itself is not shareable across threads (its
//! parameters live in `Rc`-backed autograd nodes), so the runtime ships a
//! [`PipelineSnapshot`] — plain bytes — to every worker and each worker
//! hydrates a private replica once at startup. That is the standard
//! immutable-weights / many-replicas deployment shape: weights are frozen
//! at snapshot time, so replicas are exact clones and any worker may
//! serve any request.
//!
//! Scale-out shape: [`ServeConfig::replicas`] independent *replica
//! groups*, each with its own bounded queue, its own condition-embedding
//! cache, and [`ServeConfig::workers`] worker threads. The
//! [`ShardRouter`] places each request by its `(prompt, variant)` key, so
//! repeats of a prompt land on the group that already cached its
//! embedding; the [`AdmissionController`] sheds work *before* it touches
//! any queue, with a typed `overloaded` reply carrying a
//! `retry_after_ms` hint.
//!
//! Determinism contract: a request's image depends only on its own
//! `(prompt, seed, steps, guidance, task)`. Each request's initial latent
//! (and, for inpainting, its pin-noise stream) is drawn from a private
//! `StdRng` seeded with the request seed, and the DDIM reverse process is
//! row-independent, so coalescing requests into one `[n, c, h, w]`
//! sampler call — even a heterogeneous text/view/inpaint mix — or moving
//! a request between replica groups changes throughput, never bytes.
//!
//! Fault-tolerance contract: one bad request must never take the service
//! down, one dead worker must never strand queued work, and one dead
//! *replica group* must never drop a request.
//!
//! - Per-request preparation runs under `catch_unwind`; a panic answers
//!   *that* request with a typed `worker_error` reply while the rest of
//!   the batch is still served. The worker that caught the panic is
//!   treated as suspect: it finishes its batch, exits, and the supervisor
//!   respawns a fresh replica in its place (up to
//!   [`ServeConfig::max_worker_restarts`]).
//! - A worker that dies outright hands its unserved batch back to the
//!   front of its group's queue first, so the replacement worker — or any
//!   surviving peer — finishes it with zero dropped replies.
//! - A *replica kill* ([`Fault::KillReplica`]) takes a whole group down
//!   mid-batch: the dying worker marks the group down in the router,
//!   aborts its siblings' pops via the group kill flag, re-routes its
//!   in-flight batch onto surviving groups, and panics. The supervisor
//!   then re-routes anything left in the dead group's queue, clears its
//!   condition cache (the respawned group recomputes, exactly as a swap
//!   does), respawns every worker from the model slot, and marks the
//!   group back up — zero requests dropped end to end.
//! - A cancelled request is swept from the queue with a typed `cancelled`
//!   reply, or — once sampling started — stops the coalesced sampler call
//!   between DDIM steps as soon as *every* request in the call is
//!   cancelled, freeing the batch slot early.
//! - Sampler outputs are checked for non-finite values before decode;
//!   a NaN latent becomes a typed reply, never a garbage image.
//! - Cached condition embeddings are validated on every hit; a corrupt
//!   entry is evicted, counted, and recomputed. A *poisoned* cache lock
//!   ([`Fault::PoisonCacheLock`]) is recovered, never propagated.
//! - If every worker in every group is gone and no restarts remain, the
//!   supervisor drains the queues and rejects each request with a typed
//!   reason instead of hanging the clients forever.
//!
//! All of these paths are driven deterministically in tests by a
//! [`FaultPlan`] (see [`crate::fault`]); production runtimes pass none.

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::cache::{ConditionCache, ConditionKey};
use crate::fault::{Fault, FaultPlan, SwapFault};
use crate::queue::{Pending, RequestQueue};
use crate::request::{
    GenerateRequest, GeneratedImage, LatentPreview, RejectReason, ServeReply, StageLatency,
    TaskPayload,
};
use crate::router::ShardRouter;
use crate::stats::{StatsCollector, StatsReport};
use aero_diffusion::{CancelSignal, CancelToken, DdimSampler, LatentPin, StepEvent, StepSink};
use aero_model::{
    snapshot_from_artifact, IntegrityState, ModelArtifact, ModelError, ModelRegistry, RegistryEntry,
};
use aero_scene::{build_dataset, DatasetConfig, DatasetItem, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot, TaskKind, TaskSpec};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Independent replica worker groups, each with its own queue and
    /// condition cache, routed over by prompt.
    pub replicas: usize,
    /// Worker threads *per replica group*, each holding one pipeline
    /// replica.
    pub workers: usize,
    /// Most requests coalesced into one sampler call.
    pub max_batch: usize,
    /// Bounded queue capacity *per replica group*; beyond it submissions
    /// are rejected.
    pub queue_capacity: usize,
    /// How long a worker lingers for stragglers to fill a batch.
    pub batch_wait: Duration,
    /// Condition-embedding LRU capacity (entries, per replica group).
    pub cache_capacity: usize,
    /// Default DDIM steps (requests may override per call).
    pub steps: usize,
    /// Default guidance scale (requests may override per call).
    pub guidance_scale: f32,
    /// Seed of the reference scene used as the conditioning exemplar.
    pub reference_seed: u64,
    /// Total worker respawns the supervisor may perform over the
    /// runtime's life before it stops replacing dead workers. A whole
    /// replica-group respawn counts as one restart.
    pub max_worker_restarts: usize,
    /// Admission-control knobs (tenant token buckets + global shed
    /// gates). The default admits everything.
    pub admission: AdmissionConfig,
    /// Stream quantized intermediate-latent previews for every request,
    /// even ones that did not ask (`request.stream` enables it per
    /// request).
    pub stream_previews: bool,
}

impl ServeConfig {
    /// Defaults matched to a trained pipeline's own sampler settings.
    #[must_use]
    pub fn for_pipeline(config: &PipelineConfig) -> Self {
        ServeConfig {
            replicas: 1,
            workers: aero_tensor::parallel::suggested_threads(2),
            max_batch: 8,
            queue_capacity: 32,
            batch_wait: Duration::from_millis(2),
            cache_capacity: 64,
            steps: config.diffusion.ddim_steps,
            guidance_scale: config.diffusion.guidance_scale,
            reference_seed: 0,
            max_worker_restarts: 4,
            admission: AdmissionConfig::default(),
            stream_previews: false,
        }
    }
}

/// Handle for one submitted request; resolves to exactly one terminal
/// reply, possibly preceded by streamed [`ServeReply::Preview`] events.
#[derive(Debug)]
pub struct ResponseHandle {
    id: String,
    rx: Receiver<ServeReply>,
    cancel: CancelToken,
    stats: Arc<StatsCollector>,
}

impl ResponseHandle {
    /// The request id this handle resolves.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Requests cancellation: queued, the request is swept with a typed
    /// `cancelled` reply; sampling, the coalesced call stops between DDIM
    /// steps once every rider is cancelled. Idempotent, never blocks.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the cancel token, for cancelling after `wait` consumed
    /// the handle (e.g. from another thread or the NDJSON reader).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks for the next reply event: zero or more previews, then
    /// exactly one terminal reply. `None` after the terminal reply (or if
    /// the worker died without answering — pair with
    /// [`wait`](ResponseHandle::wait) when previews are not consumed).
    #[must_use]
    pub fn next_event(&self) -> Option<ServeReply> {
        match self.rx.recv() {
            Ok(reply) => {
                if let ServeReply::Rejected { reason, .. } = &reply {
                    self.stats.record_rejected(reason);
                }
                Some(reply)
            }
            Err(_) => None,
        }
    }

    /// Blocks until the terminal reply arrives, discarding any streamed
    /// previews. A worker that died without answering surfaces as a typed
    /// [`RejectReason::WorkerFailure`].
    #[must_use]
    pub fn wait(self) -> ServeReply {
        loop {
            match self.rx.recv() {
                Ok(reply) if !reply.is_terminal() => {}
                Ok(reply) => {
                    if let ServeReply::Rejected { reason, .. } = &reply {
                        self.stats.record_rejected(reason);
                    }
                    return reply;
                }
                Err(_) => {
                    let reason = RejectReason::WorkerFailure;
                    self.stats.record_rejected(&reason);
                    return ServeReply::Rejected { id: self.id, reason };
                }
            }
        }
    }
}

/// The hot-swappable model: the snapshot every (re)spawned or swapping
/// worker hydrates from, plus a generation counter that lets workers
/// detect a swap with one atomic load per batch.
///
/// The swap protocol is drain-free by construction: installing a new
/// snapshot only changes what *future* hydrations read. A worker that
/// already popped a batch finishes it on its current replica; it notices
/// the new generation before the *next* batch and rehydrates then. No
/// request is ever dropped or re-queued by a swap.
#[derive(Debug)]
struct ModelSlot {
    /// Current snapshot and its generation, updated together.
    current: Mutex<(Arc<PipelineSnapshot>, u64)>,
    /// Mirror of the generation inside `current`, readable without the
    /// lock so the per-batch check stays off the swap mutex.
    generation: AtomicU64,
}

impl ModelSlot {
    fn new(snapshot: Arc<PipelineSnapshot>) -> ModelSlot {
        ModelSlot { current: Mutex::new((snapshot, 0)), generation: AtomicU64::new(0) }
    }

    /// The latest snapshot and its generation.
    fn current(&self) -> (Arc<PipelineSnapshot>, u64) {
        let guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&guard.0), guard.1)
    }

    /// Generation of the latest snapshot (lock-free).
    fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Installs a new snapshot and returns its generation.
    fn install(&self, snapshot: PipelineSnapshot) -> u64 {
        let mut guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let generation = guard.1 + 1;
        *guard = (Arc::new(snapshot), generation);
        self.generation.store(generation, Ordering::SeqCst);
        generation
    }
}

/// One replica worker group: its own queue, its own condition cache, and
/// a kill flag its workers watch between pops.
#[derive(Debug)]
struct ReplicaGroup {
    queue: Arc<RequestQueue>,
    cache: Arc<Mutex<ConditionCache>>,
    /// Set by the worker that draws a [`Fault::KillReplica`]; aborts the
    /// sibling workers' pops and gates the supervisor's group respawn.
    kill: AtomicBool,
}

/// Everything a worker shares with its peers, the router, and the
/// supervisor.
#[derive(Clone)]
struct FleetShared {
    groups: Arc<Vec<ReplicaGroup>>,
    router: Arc<ShardRouter>,
    stats: Arc<StatsCollector>,
    faults: Option<Arc<FaultPlan>>,
    slot: Arc<ModelSlot>,
}

/// How a worker thread ended, as seen by the supervisor. A thread that
/// panicked instead of returning shows up as `Err` from `join`.
enum WorkerOutcome {
    /// Clean exit: the queue drained out under shutdown.
    Drained,
    /// The snapshot would not hydrate. Deterministic — the same bytes
    /// fail the same way — so the supervisor does not burn restarts on
    /// it.
    HydrationFailed,
    /// The worker caught an in-request panic, answered it with a typed
    /// reply, finished its batch, and exited so a fresh replica can take
    /// its slot.
    Suspect,
    /// The worker's whole group was killed; it exits without burning a
    /// restart and the supervisor respawns the group as a unit.
    ReplicaKilled,
}

/// Outcome of a successful registry-backed model swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapOutcome {
    /// The registry entry that was installed.
    pub entry: RegistryEntry,
    /// The model-slot generation the swap produced; workers rehydrate to
    /// it before their next batch.
    pub generation: u64,
}

/// The running replica fleet. Dropping it without [`ServeRuntime::shutdown`]
/// leaks the workers; always shut down for a graceful drain.
#[derive(Debug)]
pub struct ServeRuntime {
    groups: Arc<Vec<ReplicaGroup>>,
    router: Arc<ShardRouter>,
    admission: AdmissionController,
    stats: Arc<StatsCollector>,
    slot: Arc<ModelSlot>,
    faults: Option<Arc<FaultPlan>>,
    registry: Mutex<Option<ModelRegistry>>,
    active_model: Mutex<Option<(String, u32)>>,
    next_ordinal: AtomicU64,
    next_swap_ordinal: AtomicU64,
    supervisor: JoinHandle<()>,
}

impl ServeRuntime {
    /// Spawns `config.replicas` worker groups of `config.workers` threads
    /// each, every thread hydrating a replica from the snapshot, plus a
    /// supervisor that respawns dead workers and dead groups, and starts
    /// serving.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas == 0`, `config.workers == 0`,
    /// `config.max_batch == 0`, or a thread cannot be spawned. A snapshot
    /// that fails to hydrate does *not* panic: the affected workers exit
    /// with a typed failure recorded in stats, and queued requests are
    /// rejected with `worker_error` once no worker remains.
    #[must_use]
    pub fn start(snapshot: PipelineSnapshot, config: ServeConfig) -> Self {
        ServeRuntime::start_with_faults(snapshot, config, None)
    }

    /// [`ServeRuntime::start`], plus a deterministic [`FaultPlan`] the
    /// workers consult per request. Tests use this to trigger panics,
    /// worker deaths, replica kills, NaN outputs and cache corruption on
    /// exact requests.
    ///
    /// # Panics
    ///
    /// As [`ServeRuntime::start`].
    #[must_use]
    pub fn start_with_faults(
        snapshot: PipelineSnapshot,
        config: ServeConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(config.replicas > 0, "serve runtime needs at least one replica group");
        assert!(config.workers > 0, "serve runtime needs at least one worker per group");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let slot = Arc::new(ModelSlot::new(Arc::new(snapshot)));
        let router = Arc::new(ShardRouter::new(config.replicas));
        let groups: Arc<Vec<ReplicaGroup>> = Arc::new(
            (0..config.replicas)
                .map(|_| ReplicaGroup {
                    queue: Arc::new(RequestQueue::new(config.queue_capacity)),
                    cache: Arc::new(Mutex::new(ConditionCache::new(config.cache_capacity))),
                    kill: AtomicBool::new(false),
                })
                .collect(),
        );
        let stats = Arc::new(StatsCollector::new());
        let shared = FleetShared {
            groups: Arc::clone(&groups),
            router: Arc::clone(&router),
            stats: Arc::clone(&stats),
            faults: faults.clone(),
            slot: Arc::clone(&slot),
        };
        let mut fleet: Vec<Vec<Option<JoinHandle<WorkerOutcome>>>> = (0..config.replicas)
            .map(|g| {
                (0..config.workers)
                    .map(|i| {
                        let handle = spawn_worker(g, i, 0, shared.clone(), config)
                            .expect("spawn serve worker");
                        Some(handle)
                    })
                    .collect()
            })
            .collect();
        let supervisor = std::thread::Builder::new()
            .name("aero-serve-supervisor".into())
            .spawn(move || supervisor_loop(&shared, config, &mut fleet))
            .expect("spawn serve supervisor");
        ServeRuntime {
            groups,
            router,
            admission: AdmissionController::new(config.admission),
            stats,
            slot,
            faults,
            registry: Mutex::new(None),
            active_model: Mutex::new(None),
            next_ordinal: AtomicU64::new(0),
            next_swap_ordinal: AtomicU64::new(0),
            supervisor,
        }
    }

    /// Enqueues a request, returning a handle for its reply. The request
    /// first passes admission (tenant token bucket + global shed gates),
    /// then routes to its `(prompt, variant)` home replica group.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Overloaded`] when admission sheds it (the
    /// `retry_after_ms` hint says when to retry — add jitter),
    /// [`RejectReason::QueueFull`] under backpressure,
    /// [`RejectReason::ShuttingDown`] once a drain began (including the
    /// terminal drain after every worker died).
    pub fn submit(&self, request: GenerateRequest) -> Result<ResponseHandle, RejectReason> {
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::SeqCst);
        if let Err(reason) =
            self.admission.admit(request.tenant_id(), self.queue_len(), self.stats.e2e_p95_us())
        {
            self.stats.record_rejected(&reason);
            return Err(reason);
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let id = request.id.clone();
        let deadline = request.deadline.map(|d| now + d);
        let cancel = CancelToken::new();
        let key = route_key_for(&request, self.slot.current().0.variant());
        // A request whose home group is mid-respawn still lands on *some*
        // queue: survivors if any are alive, otherwise the home group's
        // own queue, which outlives the kill and is served after respawn.
        let group_idx = self.router.route(&key).unwrap_or_else(|| home_group(&key, &self.router));
        let Some(group) = self.groups.get(group_idx) else {
            let reason = RejectReason::WorkerError { detail: "no such replica group".into() };
            self.stats.record_rejected(&reason);
            return Err(reason);
        };
        let pending = Pending {
            request,
            ordinal,
            enqueued: now,
            deadline,
            cancel: cancel.clone(),
            responder: tx,
        };
        match group.queue.push(pending) {
            Ok(()) => {
                self.stats.set_queue_depth(self.queue_len());
                Ok(ResponseHandle { id, rx, cancel, stats: Arc::clone(&self.stats) })
            }
            Err(reason) => {
                self.stats.record_rejected(&reason);
                Err(reason)
            }
        }
    }

    /// Requests currently waiting, summed across every replica group's
    /// queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.groups.iter().map(|g| g.queue.len()).sum()
    }

    /// Replica groups currently alive in the router.
    #[must_use]
    pub fn alive_replicas(&self) -> usize {
        self.router.alive()
    }

    /// A point-in-time statistics report.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// The unified metric snapshot: this runtime's serving counters
    /// merged with the process-global ambient metrics (tensor kernels,
    /// sampler spans, training counters).
    #[must_use]
    pub fn metrics(&self) -> aero_obs::MetricsSnapshot {
        self.stats.metrics_snapshot()
    }

    /// Attaches (or replaces) the model registry backing
    /// [`ServeRuntime::swap_from_registry`] and [`ServeRuntime::list_models`].
    pub fn set_registry(&self, registry: ModelRegistry) {
        *self.registry.lock().unwrap_or_else(PoisonError::into_inner) = Some(registry);
    }

    /// The registry model currently serving, as `(name, version)`. `None`
    /// when the runtime still serves its boot snapshot.
    #[must_use]
    pub fn active_model(&self) -> Option<(String, u32)> {
        self.active_model.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The model-slot generation workers are converging to.
    #[must_use]
    pub fn model_generation(&self) -> u64 {
        self.slot.generation()
    }

    /// Every model in the attached registry with its integrity state.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no registry is attached or its index is
    /// malformed.
    pub fn list_models(&self) -> Result<Vec<(RegistryEntry, IntegrityState)>, ModelError> {
        let registry = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| ModelError::Meta("no model registry attached".into()))?;
        let entries = registry.entries()?;
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let state = registry.verify(&entry)?;
            out.push((entry, state));
        }
        Ok(out)
    }

    /// Installs a new snapshot directly. In-flight batches finish on the
    /// old replicas; each worker rehydrates before its next batch, so no
    /// request is dropped. Every replica group's condition cache is
    /// cleared — its entries were computed by the outgoing model.
    pub fn swap_snapshot(&self, snapshot: PipelineSnapshot) -> u64 {
        let generation = self.slot.install(snapshot);
        for group in self.groups.iter() {
            lock_cache(&group.cache).clear();
        }
        aero_obs::counter!("serve.swap.count").inc();
        aero_obs::gauge!("serve.swap.generation").set(generation as f64);
        generation
    }

    /// Resolves `name` (optionally pinned to a version) in the attached
    /// registry, loads and CRC-verifies the artifact, and installs the
    /// reassembled snapshot via [`ServeRuntime::swap_snapshot`].
    ///
    /// Failure at any point — unknown model, corrupt artifact, malformed
    /// metadata — leaves the currently installed model serving untouched;
    /// a swap is atomic from the workers' point of view.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no registry is attached or the name does
    /// not resolve; [`ModelError::Corrupt`] /
    /// [`ModelError::VersionMismatch`] when the artifact fails
    /// verification.
    pub fn swap_from_registry(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<SwapOutcome, ModelError> {
        let ordinal = self.next_swap_ordinal.fetch_add(1, Ordering::SeqCst);
        let result = self.try_swap_from_registry(name, version, ordinal);
        if result.is_err() {
            aero_obs::counter!("serve.swap.rejected").inc();
        }
        result
    }

    fn try_swap_from_registry(
        &self,
        name: &str,
        version: Option<u32>,
        swap_ordinal: u64,
    ) -> Result<SwapOutcome, ModelError> {
        let registry = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| ModelError::Meta("no model registry attached".into()))?;
        let entry = registry.resolve(name, version)?;
        let mut bytes = std::fs::read(registry.path_of(&entry))?;
        if let Some(SwapFault::CorruptArtifact) =
            self.faults.as_ref().and_then(|plan| plan.take_swap(swap_ordinal))
        {
            let mid = bytes.len() / 2;
            if let Some(byte) = bytes.get_mut(mid) {
                *byte ^= 0x01;
            }
        }
        // CRC and structural verification happen here, before anything
        // reaches the model slot.
        let artifact = ModelArtifact::from_bytes(bytes)?;
        let snapshot = snapshot_from_artifact(&artifact)?;
        let generation = self.swap_snapshot(snapshot);
        *self.active_model.lock().unwrap_or_else(PoisonError::into_inner) =
            Some((entry.name.clone(), entry.version));
        Ok(SwapOutcome { entry, generation })
    }

    /// Graceful drain: stops admitting work, lets the workers finish
    /// everything already queued, joins them, and returns final stats.
    #[must_use]
    pub fn shutdown(self) -> StatsReport {
        for group in self.groups.iter() {
            group.queue.begin_shutdown();
        }
        let _ = self.supervisor.join();
        self.stats.report()
    }
}

/// The routing key: the same `(prompt, variant)` pair the condition
/// cache keys on, so routing locality *is* cache locality.
fn route_key(prompt: &str, variant: impl std::fmt::Debug) -> String {
    format!("{prompt}\u{1f}{variant:?}")
}

/// The routing key of a whole request: the text key, extended with the
/// task discriminant and source-image digest for image-conditioned
/// tasks — mirroring [`ConditionKey::for_task`], so task requests that
/// share a conditioning image also share a condition cache. Text
/// requests keep the exact pre-task key string.
fn route_key_for(request: &GenerateRequest, variant: impl std::fmt::Debug) -> String {
    let base = route_key(&request.prompt, variant);
    match &request.task {
        None => base,
        Some(payload) => {
            let spec = payload.to_spec(&request.prompt);
            format!("{base}\u{1f}{}\u{1f}{:016x}", spec.kind().as_str(), spec.source_digest())
        }
    }
}

/// The group `key` would route to if every group were alive — the
/// fallback target while the whole fleet is mid-respawn.
fn home_group(key: &str, router: &ShardRouter) -> usize {
    let mut best = (ShardRouter::weight(key, 0), 0);
    for group in 1..router.groups() {
        let w = ShardRouter::weight(key, group);
        if w > best.0 {
            best = (w, group);
        }
    }
    best.1
}

fn spawn_worker(
    group: usize,
    slot: usize,
    generation: usize,
    shared: FleetShared,
    config: ServeConfig,
) -> std::io::Result<JoinHandle<WorkerOutcome>> {
    std::thread::Builder::new()
        .name(format!("aero-serve-{group}.{slot}.{generation}"))
        .spawn(move || worker_loop(&shared, group, config))
}

/// Supervises the fleet: joins finished workers, respawns single workers
/// that died suspect (panic) while restarts remain, respawns *whole
/// replica groups* after a kill — re-routing anything stranded in the
/// dead group's queue first — and, once no worker is left anywhere,
/// fails all queued work with a typed reason so clients never hang on a
/// dead pool. It also sweeps every queue on a timer, so expired and
/// cancelled requests get their typed reply even while all workers are
/// busy sampling. Respawned workers hydrate from the model slot, so they
/// always come up on the latest installed model.
fn supervisor_loop(
    shared: &FleetShared,
    config: ServeConfig,
    fleet: &mut [Vec<Option<JoinHandle<WorkerOutcome>>>],
) {
    let mut restarts = 0usize;
    let mut generation = 0usize;
    loop {
        let mut live = 0usize;
        for (g, slots) in fleet.iter_mut().enumerate() {
            let Some(group) = shared.groups.get(g) else { continue };
            group.queue.sweep();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                    let Some(handle) = slot.take() else { continue };
                    match handle.join() {
                        Ok(
                            WorkerOutcome::Drained
                            | WorkerOutcome::HydrationFailed
                            | WorkerOutcome::ReplicaKilled,
                        ) => {}
                        // A worker that died alone is replaced even
                        // mid-shutdown: its requeued batch still has to be
                        // drained, and the restart budget bounds the loop
                        // either way. While the group is kill-flagged the
                        // slot stays empty — the group respawns as a unit
                        // below. A failed respawn leaves the slot empty;
                        // the live count then treats it like any other
                        // dead worker.
                        Ok(WorkerOutcome::Suspect) | Err(_) => {
                            if !group.kill.load(Ordering::SeqCst)
                                && restarts < config.max_worker_restarts
                            {
                                if let Ok(replacement) =
                                    spawn_worker(g, i, generation + 1, shared.clone(), config)
                                {
                                    restarts += 1;
                                    generation += 1;
                                    shared.stats.record_worker_restart();
                                    *slot = Some(replacement);
                                }
                            }
                        }
                    }
                }
            }
            // A killed group respawns as a unit once its last worker is
            // joined: re-route stragglers its dying workers left behind,
            // drop the cache (the kill may have left it poisoned or
            // half-written), bring up a full set of fresh workers, and
            // only then mark the group routable again.
            if group.kill.load(Ordering::SeqCst) && slots.iter().all(Option::is_none) {
                let stranded = group.queue.drain_all();
                reroute_batch(shared, g, stranded);
                lock_cache(&group.cache).clear();
                if restarts < config.max_worker_restarts {
                    restarts += 1;
                    generation += 1;
                    let mut respawned = 0usize;
                    for (i, slot) in slots.iter_mut().enumerate() {
                        if let Ok(handle) = spawn_worker(g, i, generation, shared.clone(), config) {
                            *slot = Some(handle);
                            respawned += 1;
                        }
                    }
                    if respawned > 0 {
                        group.kill.store(false, Ordering::SeqCst);
                        shared.router.mark_up(g);
                        shared.stats.record_replica_respawn();
                        shared.stats.record_worker_restart();
                    }
                }
            }
            live += slots.iter().filter(|slot| slot.is_some()).count();
        }
        if live == 0 {
            // Nobody will ever pop again. On a graceful shutdown the
            // queues are already drained and this is a no-op; on a
            // collapsed fleet it converts every stranded request into a
            // typed rejection.
            for group in shared.groups.iter() {
                group.queue.begin_shutdown();
                for pending in group.queue.drain_all() {
                    pending.reject(RejectReason::WorkerError {
                        detail: "no live serving workers remain".into(),
                    });
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One worker's private serving state: a hydrated replica plus the
/// conditioning exemplar and fixed caption it derives from. Rebuilt
/// whenever the worker adopts a new model-slot generation.
struct Replica {
    pipeline: AeroDiffusionPipeline,
    item: DatasetItem,
    caption_g: String,
}

impl Replica {
    /// Hydrates a fresh replica from `snapshot`. `None` mirrors a failed
    /// hydration — the snapshot's bytes do not decode, or the reference
    /// dataset came up empty.
    fn build(snapshot: &PipelineSnapshot, config: &ServeConfig) -> Option<Replica> {
        let pipeline = snapshot.hydrate().ok()?;
        let reference = build_dataset(&DatasetConfig {
            n_scenes: 1,
            image_size: pipeline.config().vision.image_size,
            seed: config.reference_seed,
            generator: SceneGeneratorConfig::default(),
        });
        let item = reference.items.into_iter().next()?;
        // A fixed caption G makes the encode a pure function of the
        // request's prompt (G'), which is what lets the condition cache
        // key on it.
        let caption_g = pipeline.caption_for(&item, &mut StdRng::seed_from_u64(0));
        Some(Replica { pipeline, item, caption_g })
    }
}

/// One worker: hydrate a replica from the model slot, then serve its
/// group's batches until the queue drains out, the group is killed, or
/// the worker turns suspect. Before each batch the worker compares its
/// generation against the slot; on a mismatch it rehydrates from the
/// newly installed snapshot, so a swap never interrupts a batch already
/// being served.
fn worker_loop(shared: &FleetShared, group_idx: usize, config: ServeConfig) -> WorkerOutcome {
    let Some(group) = shared.groups.get(group_idx) else {
        return WorkerOutcome::Drained;
    };
    let (snapshot, mut generation) = shared.slot.current();
    let Some(mut replica) = Replica::build(&snapshot, &config) else {
        shared.stats.record_hydration_failure();
        return WorkerOutcome::HydrationFailed;
    };
    loop {
        let Some(batch) =
            group.queue.pop_batch_watch(config.max_batch, config.batch_wait, &group.kill)
        else {
            return if group.kill.load(Ordering::SeqCst) {
                WorkerOutcome::ReplicaKilled
            } else {
                WorkerOutcome::Drained
            };
        };
        // A sibling drew a replica kill after this pop won the race: hand
        // the batch to survivors and die with the group.
        if group.kill.load(Ordering::SeqCst) {
            reroute_batch(shared, group_idx, batch);
            return WorkerOutcome::ReplicaKilled;
        }
        if shared.slot.generation() != generation {
            let (snapshot, new_generation) = shared.slot.current();
            match Replica::build(&snapshot, &config) {
                Some(fresh) => {
                    replica = fresh;
                    aero_obs::counter!("serve.swap.worker_rehydrated").inc();
                }
                // The new snapshot won't hydrate: keep serving on the old
                // replica rather than dying with work in hand. Adopting
                // the generation anyway stops this worker from re-failing
                // the hydration on every subsequent batch.
                None => {
                    shared.stats.record_hydration_failure();
                    aero_obs::counter!("serve.swap.fallback").inc();
                }
            }
            generation = new_generation;
        }
        if !serve_batch(&replica, batch, shared, group_idx, group, &config) {
            // An in-request panic was caught and answered, but this
            // replica's internal state is no longer above suspicion.
            // Exit after the batch; the supervisor brings up a fresh one.
            return WorkerOutcome::Suspect;
        }
    }
}

/// Re-routes a dying group's in-flight requests onto surviving groups,
/// or — when no survivor exists — back onto the dying group's own queue,
/// which outlives the kill and is served after respawn. Either way no
/// request is dropped.
fn reroute_batch(shared: &FleetShared, from: usize, batch: Vec<Pending>) {
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    let (snapshot, _) = shared.slot.current();
    let mut per_group: Vec<Vec<Pending>> = (0..shared.groups.len()).map(|_| Vec::new()).collect();
    let mut home: Vec<Pending> = Vec::new();
    for pending in batch {
        let key = route_key_for(&pending.request, snapshot.variant());
        match shared.router.route_excluding(&key, Some(from)) {
            Some(g) => match per_group.get_mut(g) {
                Some(bucket) => bucket.push(pending),
                None => home.push(pending),
            },
            None => home.push(pending),
        }
    }
    for (g, bucket) in per_group.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        if let Some(group) = shared.groups.get(g) {
            group.queue.requeue(bucket);
        }
    }
    if !home.is_empty() {
        if let Some(group) = shared.groups.get(from) {
            group.queue.requeue(home);
        }
    }
    shared.stats.record_reroute(n);
}

/// Locks the condition cache, recovering from poison: the cache holds
/// only recomputable embeddings, so a panic in one worker must not
/// cascade lock panics through every survivor.
fn lock_cache(cache: &Mutex<ConditionCache>) -> MutexGuard<'_, ConditionCache> {
    cache.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deliberately poisons a condition-cache mutex: a helper thread takes
/// the lock and panics while holding it. Drives [`Fault::PoisonCacheLock`];
/// every real lock site recovers via [`lock_cache`].
fn poison_cache(cache: &Arc<Mutex<ConditionCache>>) {
    let cache = Arc::clone(cache);
    let spawned = std::thread::Builder::new().name("aero-serve-poisoner".into()).spawn(move || {
        let _guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
        panic!("injected fault: poisoning the condition-cache lock");
    });
    if let Ok(handle) = spawned {
        let _ = handle.join();
    }
}

fn tensor_is_finite(t: &Tensor) -> bool {
    t.as_slice().iter().all(|v| v.is_finite())
}

/// The composite cancel signal for one coalesced sampler call: the call
/// aborts between DDIM steps only when *every* rider is cancelled —
/// stopping earlier would corrupt the surviving rows.
struct GroupCancel {
    tokens: Vec<CancelToken>,
}

impl CancelSignal for GroupCancel {
    fn is_cancelled(&self) -> bool {
        !self.tokens.is_empty() && self.tokens.iter().all(CancelToken::is_cancelled)
    }
}

/// Quantizes one request's latent row to 8 bits for a preview reply.
fn quantize_preview(id: &str, step: usize, total: usize, latent: &Tensor) -> LatentPreview {
    let dims = latent.shape();
    let shape = if let [c, h, w] = *dims { [c, h, w] } else { [dims.len(), 0, 0] };
    let data = latent.as_slice();
    let (min, max) =
        data.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (min, max) =
        if min.is_finite() && max.is_finite() && max > min { (min, max) } else { (0.0, 1.0) };
    let scale = 255.0 / (max - min);
    let latent_q8 =
        data.iter().map(|&v| ((v - min) * scale).clamp(0.0, 255.0).round() as u8).collect();
    LatentPreview { id: id.to_string(), step, total_steps: total, shape, min, max, latent_q8 }
}

/// A request annotated with everything measured before sampling.
struct Job {
    pending: Pending,
    queue_us: u64,
    encode_us: u64,
    cache_hit: bool,
    cond: Tensor,
    /// Inpainting pin `(mask, reference)` rows, both `[1, c, h, w]`;
    /// `None` for every other task kind. The pin's per-step noise is
    /// drawn later, from the request's own rng, right after its initial
    /// latent.
    pin_parts: Option<(Tensor, Tensor)>,
    /// Injected [`Fault::NanLatents`]: poison this request's latents
    /// after sampling so the output guard has something to catch.
    nan_latents: bool,
}

/// A task request whose conditioning image cannot feed this replica's
/// pipeline is a client error: it gets a typed `worker_error` reply, not
/// a panic (which would also retire the worker as suspect).
fn task_shape_error(replica: &Replica, request: &GenerateRequest) -> Option<String> {
    let native = replica.pipeline.config().vision.image_size;
    match &request.task {
        Some(TaskPayload::View { image, .. } | TaskPayload::Inpaint { image, .. })
            if image.width != native || image.height != native =>
        {
            Some(format!(
                "{} tasks need a {native}x{native} source image, got {}x{}",
                request.task_kind().as_str(),
                image.width,
                image.height
            ))
        }
        _ => None,
    }
}

/// Serves one popped batch: group by sampler settings, encode through the
/// group's cache, run one coalesced cancellable sampler call per lane,
/// decode per request. Returns `false` if the worker caught an in-request
/// panic and should be replaced after this batch.
fn serve_batch(
    replica: &Replica,
    batch: Vec<Pending>,
    shared: &FleetShared,
    group_idx: usize,
    group: &ReplicaGroup,
    config: &ServeConfig,
) -> bool {
    let pipeline = &replica.pipeline;
    let dequeued = Instant::now();
    shared.stats.set_queue_depth(shared.groups.iter().map(|g| g.queue.len()).sum());
    // Pull this batch's scheduled faults up front. The two kill faults
    // must fire before any request is served, so the whole batch is
    // finished by someone else; any other faults taken with them are
    // re-scheduled for the retry, and the worker dies the way a real
    // crash would — an uncaught panic.
    //
    // KillReplica: mark the group down and kill-flagged first, so the
    // router stops placing new work here and sibling workers abort their
    // pops; then hand the in-flight batch to survivors.
    //
    // KillWorker: requeue to this group's own queue — the group survives,
    // only this thread dies.
    let mut batch_faults: HashMap<u64, Fault> = HashMap::new();
    if let Some(plan) = &shared.faults {
        for pending in &batch {
            if let Some(fault) = plan.take(pending.ordinal) {
                batch_faults.insert(pending.ordinal, fault);
            }
        }
        if batch_faults.values().any(|f| matches!(f, Fault::KillReplica)) {
            for (ordinal, fault) in batch_faults {
                if !matches!(fault, Fault::KillReplica) {
                    plan.schedule(ordinal, fault);
                }
            }
            shared.stats.record_replica_kill();
            shared.router.mark_down(group_idx);
            group.kill.store(true, Ordering::SeqCst);
            group.queue.wake_all();
            reroute_batch(shared, group_idx, batch);
            panic!("injected fault: replica group killed mid-batch");
        }
        if batch_faults.values().any(|f| matches!(f, Fault::KillWorker)) {
            for (ordinal, fault) in batch_faults {
                if !matches!(fault, Fault::KillWorker) {
                    plan.schedule(ordinal, fault);
                }
            }
            group.queue.requeue(batch);
            panic!("injected fault: worker killed mid-batch");
        }
    }
    let mut healthy = true;
    // Requests only share a sampler call when they agree on the settings
    // that alter it; override combinations are grouped in arrival order.
    let mut lanes: Vec<((usize, u32), Vec<Pending>)> = Vec::new();
    for pending in batch {
        let steps = pending.request.steps.unwrap_or(config.steps).max(1);
        let guidance = pending.request.guidance_scale.unwrap_or(config.guidance_scale);
        let key = (steps, guidance.to_bits());
        match lanes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pending),
            None => lanes.push((key, vec![pending])),
        }
    }
    for ((steps, guidance_bits), members) in lanes {
        let guidance = f32::from_bits(guidance_bits);
        let sampler = DdimSampler::new(steps, guidance);
        let mut jobs: Vec<Job> = Vec::new();
        for pending in members {
            let fault = batch_faults.remove(&pending.ordinal);
            if let Some(Fault::DelayMs(ms)) = fault {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(fault, Some(Fault::PoisonCacheLock)) {
                poison_cache(&group.cache);
            }
            // A request cancelled while queued or popped never reaches
            // the sampler; its slot in the coalesced call goes to live
            // work instead.
            if pending.cancel.is_cancelled() {
                let _ = pending.responder.send(ServeReply::Rejected {
                    id: pending.request.id.clone(),
                    reason: RejectReason::Cancelled,
                });
                continue;
            }
            if let Some(detail) = task_shape_error(replica, &pending.request) {
                // The reply handle records the rejection on receipt.
                let reason = RejectReason::WorkerError { detail };
                let _ = pending
                    .responder
                    .send(ServeReply::Rejected { id: pending.request.id.clone(), reason });
                continue;
            }
            let queue_us = micros(dequeued.saturating_duration_since(pending.enqueued));
            let started = Instant::now();
            let id = pending.request.id.clone();
            let responder = pending.responder.clone();
            // Everything per-request and fallible runs under the unwind
            // guard: a panic here costs one reply, not the whole batch.
            let prepared = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, Some(Fault::PanicRequest)) {
                    panic!("injected fault: panic while preparing request");
                }
                prepare_condition(replica, &pending.request, guidance, fault, group, shared)
            }));
            match prepared {
                Ok((cond, cache_hit, pin_parts)) => jobs.push(Job {
                    pending,
                    queue_us,
                    encode_us: micros(started.elapsed()),
                    cache_hit,
                    cond,
                    pin_parts,
                    nan_latents: matches!(fault, Some(Fault::NanLatents)),
                }),
                Err(_) => {
                    shared.stats.record_worker_panic();
                    healthy = false;
                    let _ = responder.send(ServeReply::Rejected {
                        id,
                        reason: RejectReason::WorkerError {
                            detail: "panic caught while serving this request".into(),
                        },
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        let n = jobs.len();
        shared.stats.record_batch(n);
        let [c, h, w] = pipeline.latent_shape();
        let conds: Vec<&Tensor> = jobs.iter().map(|j| &j.cond).collect();
        let cond_batch = Tensor::concat(&conds, 0);
        // Each request's private noise stream: same seed, same bytes,
        // whatever else rides in the batch — or whichever replica group
        // serves it. An inpainting job draws its pin noise from the same
        // rng right after its initial latent, exactly the order
        // `AeroDiffusionPipeline::run_task` uses at batch 1; every other
        // job gets a neutral pin row (mask of ones), which the sampler
        // leaves bitwise untouched.
        let mut noise: Vec<Tensor> = Vec::with_capacity(jobs.len());
        let mut pin_masks: Vec<Tensor> = Vec::with_capacity(jobs.len());
        let mut pin_refs: Vec<Tensor> = Vec::with_capacity(jobs.len());
        let mut pin_noise: Vec<Tensor> = Vec::with_capacity(jobs.len());
        let mut any_pin = false;
        for j in &jobs {
            let mut rng = StdRng::seed_from_u64(j.pending.request.seed);
            noise.push(Tensor::randn(&[1, c, h, w], &mut rng));
            match &j.pin_parts {
                Some((mask, reference)) => {
                    any_pin = true;
                    pin_masks.push(mask.clone());
                    pin_refs.push(reference.clone());
                    pin_noise.push(Tensor::randn(&[1, c, h, w], &mut rng));
                }
                None => {
                    pin_masks.push(Tensor::full(&[1, c, h, w], 1.0));
                    pin_refs.push(Tensor::full(&[1, c, h, w], 0.0));
                    pin_noise.push(Tensor::full(&[1, c, h, w], 0.0));
                }
            }
        }
        let noise_refs: Vec<&Tensor> = noise.iter().collect();
        let z_init = Tensor::concat(&noise_refs, 0);
        let pin = any_pin.then(|| {
            LatentPin::new(
                Tensor::concat(&pin_masks.iter().collect::<Vec<_>>(), 0),
                Tensor::concat(&pin_refs.iter().collect::<Vec<_>>(), 0),
                Tensor::concat(&pin_noise.iter().collect::<Vec<_>>(), 0),
            )
        });
        // The cancel signal aborts the call only when every rider is
        // cancelled; the step observer streams previews to the requests
        // that asked and counts completed steps so an abort is visible.
        let group_cancel =
            GroupCancel { tokens: jobs.iter().map(|j| j.pending.cancel.clone()).collect() };
        let streamers: Vec<(usize, String, Sender<ServeReply>)> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.pending.request.stream || config.stream_previews)
            .map(|(i, j)| (i, j.pending.request.id.clone(), j.pending.responder.clone()))
            .collect();
        let sample_started = Instant::now();
        let mut steps_done = 0usize;
        let z = {
            let mut on_step = |ev: StepEvent<'_>| {
                steps_done = ev.step + 1;
                for (row, id, tx) in &streamers {
                    let view = ev.latent.narrow(0, *row, 1).reshape(&[c, h, w]);
                    shared.stats.record_preview();
                    let _ = tx
                        .send(ServeReply::Preview(quantize_preview(id, ev.step, ev.total, &view)));
                }
            };
            pipeline.sample_latents_controlled(
                &sampler,
                z_init,
                &cond_batch,
                pin.as_ref(),
                Some(&group_cancel),
                StepSink::new(&mut on_step),
            )
        };
        if steps_done < steps {
            shared.stats.record_sampler_abort();
        }
        let sample_us = micros(sample_started.elapsed());
        for (i, job) in jobs.into_iter().enumerate() {
            // Cancelled mid-sample (or while a lane-mate finished the
            // call): a typed reply, never a partial image.
            if job.pending.cancel.is_cancelled() {
                let _ = job.pending.responder.send(ServeReply::Rejected {
                    id: job.pending.request.id.clone(),
                    reason: RejectReason::Cancelled,
                });
                continue;
            }
            let decode_started = Instant::now();
            let latent = if job.nan_latents {
                Tensor::full(&[c, h, w], f32::NAN)
            } else {
                z.narrow(0, i, 1).reshape(&[c, h, w])
            };
            // Output guard: never decode (or return) a non-finite latent.
            if !tensor_is_finite(&latent) {
                shared.stats.record_nonfinite_output();
                let _ = job.pending.responder.send(ServeReply::Rejected {
                    id: job.pending.request.id.clone(),
                    reason: RejectReason::WorkerError {
                        detail: "sampler produced non-finite latents".into(),
                    },
                });
                continue;
            }
            let image = pipeline.decode_latent(&latent);
            let rgb8: Vec<u8> = image
                .to_tensor()
                .as_slice()
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
                .collect();
            let latency = StageLatency {
                queue_us: job.queue_us,
                encode_us: job.encode_us,
                sample_us,
                decode_us: micros(decode_started.elapsed()),
            };
            shared.stats.record_completed(latency, job.cache_hit);
            let reply = ServeReply::Image(GeneratedImage {
                id: job.pending.request.id.clone(),
                width: image.width(),
                height: image.height(),
                rgb8,
                latency,
                batch_size: n,
                cache_hit: job.cache_hit,
            });
            // A client that dropped its handle is gone; nothing to do.
            let _ = job.pending.responder.send(reply);
        }
    }
    healthy
}

/// Resolves one request's condition embedding through the group's cache,
/// validating cached entries and applying a [`Fault::CorruptCacheEntry`]
/// injection after the fact. Also lowers the request's task (if any) to
/// its typed spec, returning the inpainting pin rows alongside the
/// condition.
fn prepare_condition(
    replica: &Replica,
    request: &GenerateRequest,
    guidance: f32,
    fault: Option<Fault>,
    group: &ReplicaGroup,
    shared: &FleetShared,
) -> (Tensor, bool, Option<(Tensor, Tensor)>) {
    let pipeline = &replica.pipeline;
    let spec = request.task.as_ref().map(|t| t.to_spec(&request.prompt));
    let (kind, digest) = match &spec {
        None => (TaskKind::Text, 0),
        Some(s) => (s.kind(), s.source_digest()),
    };
    let key = ConditionKey::for_task(&request.prompt, pipeline.variant(), guidance, kind, digest);
    // One lock scope for the whole lookup: matching directly on the
    // locked `get` would keep the guard alive across the arms and
    // self-deadlock on the eviction below.
    let cached = {
        let mut cache = lock_cache(&group.cache);
        match cache.get(&key) {
            Some(cond) if tensor_is_finite(&cond) => Some(cond),
            Some(_) => {
                // A corrupt entry must not poison every future request
                // that shares this prompt: evict, count, recompute below.
                cache.remove(&key);
                drop(cache);
                shared.stats.record_cache_corruption();
                None
            }
            None => None,
        }
    };
    let (cond, cache_hit) = match cached {
        Some(cond) => (cond, true),
        None => {
            // The fixed replica item + caption G make the text encode a
            // pure function of the prompt; image-conditioned tasks carry
            // their own conditioning source in the spec.
            let cond = match &spec {
                None => pipeline.encode_task(&TaskSpec::text(
                    &replica.item,
                    &replica.caption_g,
                    &request.prompt,
                )),
                Some(s) => pipeline.encode_task(s),
            };
            lock_cache(&group.cache).insert(key.clone(), cond.clone());
            (cond, false)
        }
    };
    if matches!(fault, Some(Fault::CorruptCacheEntry)) {
        lock_cache(&group.cache).insert(key, Tensor::full(cond.shape(), f32::NAN));
    }
    let pin_parts = match &spec {
        Some(TaskSpec::Inpaint { source, regions, .. }) => {
            Some((pipeline.latent_mask(regions), pipeline.encode_image_latent(source)))
        }
        _ => None,
    };
    (cond, cache_hit, pin_parts)
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_tracks_pipeline_sampler_settings() {
        let pc = PipelineConfig::smoke();
        let sc = ServeConfig::for_pipeline(&pc);
        assert_eq!(sc.steps, pc.diffusion.ddim_steps);
        assert_eq!(sc.guidance_scale, pc.diffusion.guidance_scale);
        assert_eq!(sc.replicas, 1);
        assert!(!sc.stream_previews);
        assert_eq!(sc.admission, AdmissionConfig::default());
        assert!(sc.workers >= 1);
        assert!(sc.max_batch >= 1);
        assert!(sc.max_worker_restarts >= 1);
    }

    #[test]
    fn route_key_separates_prompt_from_variant() {
        // The unit separator keeps ("a", "Xb") and ("aX", "b") shaped
        // prompts/variants from colliding.
        assert_ne!(route_key("a park", "Full"), route_key("a park", "BaseSd"));
        assert_ne!(route_key("a", "bc"), route_key("ab", "c"));
    }

    #[test]
    fn home_group_matches_router_with_everything_alive() {
        let router = ShardRouter::new(4);
        for i in 0..32 {
            let key = format!("prompt-{i}");
            assert_eq!(Some(home_group(&key, &router)), router.route(&key));
        }
    }

    #[test]
    fn group_cancel_requires_every_rider() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let group = GroupCancel { tokens: vec![a.clone(), b.clone()] };
        assert!(!CancelSignal::is_cancelled(&group));
        a.cancel();
        assert!(!CancelSignal::is_cancelled(&group), "one rider must not abort the lane");
        b.cancel();
        assert!(CancelSignal::is_cancelled(&group));
        let empty = GroupCancel { tokens: Vec::new() };
        assert!(!CancelSignal::is_cancelled(&empty));
    }

    #[test]
    fn quantize_preview_round_trips_the_range() {
        let latent = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 3.0], &[1, 2, 2]);
        let p = quantize_preview("r1", 2, 8, &latent);
        assert_eq!(p.shape, [1, 2, 2]);
        assert_eq!(p.step, 2);
        assert_eq!(p.total_steps, 8);
        assert_eq!(p.latent_q8.len(), 4);
        assert_eq!(p.min, -1.0);
        assert_eq!(p.max, 3.0);
        assert_eq!(*p.latent_q8.first().unwrap(), 0);
        assert_eq!(*p.latent_q8.last().unwrap(), 255);
    }

    #[test]
    fn quantize_preview_survives_a_constant_latent() {
        let latent = Tensor::full(&[1, 2, 2], 0.5);
        let p = quantize_preview("r1", 0, 4, &latent);
        assert_eq!(p.latent_q8.len(), 4);
        assert!(
            p.latent_q8.iter().all(|&b| b == 128),
            "constant maps mid-range: {:?}",
            p.latent_q8
        );
    }
}
