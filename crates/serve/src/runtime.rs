//! The serving runtime: a supervised worker pool over one immutable
//! trained pipeline, fed by the bounded queue and the dynamic
//! micro-batcher.
//!
//! The trained pipeline itself is not shareable across threads (its
//! parameters live in `Rc`-backed autograd nodes), so the runtime ships a
//! [`PipelineSnapshot`] — plain bytes — to every worker and each worker
//! hydrates a private replica once at startup. That is the standard
//! immutable-weights / many-replicas deployment shape: weights are frozen
//! at snapshot time, so replicas are exact clones and any worker may
//! serve any request.
//!
//! Determinism contract: a request's image depends only on its own
//! `(prompt, seed, steps, guidance)`. Each request's initial latent is
//! drawn from a private `StdRng` seeded with the request seed, and the
//! DDIM reverse process is row-independent, so coalescing requests into
//! one `[n, c, h, w]` sampler call changes throughput, never bytes.
//!
//! Fault-tolerance contract: one bad request must never take the service
//! down, and one dead worker must never strand queued work.
//!
//! - Per-request preparation runs under `catch_unwind`; a panic answers
//!   *that* request with a typed `worker_error` reply while the rest of
//!   the batch is still served. The worker that caught the panic is
//!   treated as suspect: it finishes its batch, exits, and the watchdog
//!   respawns a fresh replica in its place (up to
//!   [`ServeConfig::max_worker_restarts`]).
//! - A worker that dies outright hands its unserved batch back to the
//!   front of the queue first, so the replacement worker — or any
//!   surviving peer — finishes it with zero dropped replies.
//! - Sampler outputs are checked for non-finite values before decode;
//!   a NaN latent becomes a typed reply, never a garbage image.
//! - Cached condition embeddings are validated on every hit; a corrupt
//!   entry is evicted, counted, and recomputed.
//! - If every worker is gone and no restarts remain, the watchdog drains
//!   the queue and rejects each request with a typed reason instead of
//!   hanging the clients forever.
//!
//! All of these paths are driven deterministically in tests by a
//! [`FaultPlan`] (see [`crate::fault`]); production runtimes pass none.

use crate::cache::{ConditionCache, ConditionKey};
use crate::fault::{Fault, FaultPlan, SwapFault};
use crate::queue::{Pending, RequestQueue};
use crate::request::{GenerateRequest, GeneratedImage, RejectReason, ServeReply, StageLatency};
use crate::stats::{StatsCollector, StatsReport};
use aero_diffusion::DdimSampler;
use aero_model::{
    snapshot_from_artifact, IntegrityState, ModelArtifact, ModelError, ModelRegistry, RegistryEntry,
};
use aero_scene::{build_dataset, DatasetConfig, DatasetItem, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each holding one pipeline replica.
    pub workers: usize,
    /// Most requests coalesced into one sampler call.
    pub max_batch: usize,
    /// Bounded queue capacity; beyond it submissions are rejected.
    pub queue_capacity: usize,
    /// How long a worker lingers for stragglers to fill a batch.
    pub batch_wait: Duration,
    /// Condition-embedding LRU capacity (entries).
    pub cache_capacity: usize,
    /// Default DDIM steps (requests may override per call).
    pub steps: usize,
    /// Default guidance scale (requests may override per call).
    pub guidance_scale: f32,
    /// Seed of the reference scene used as the conditioning exemplar.
    pub reference_seed: u64,
    /// Total worker respawns the watchdog may perform over the runtime's
    /// life before it stops replacing dead workers.
    pub max_worker_restarts: usize,
}

impl ServeConfig {
    /// Defaults matched to a trained pipeline's own sampler settings.
    #[must_use]
    pub fn for_pipeline(config: &PipelineConfig) -> Self {
        ServeConfig {
            workers: aero_tensor::parallel::suggested_threads(2),
            max_batch: 8,
            queue_capacity: 32,
            batch_wait: Duration::from_millis(2),
            cache_capacity: 64,
            steps: config.diffusion.ddim_steps,
            guidance_scale: config.diffusion.guidance_scale,
            reference_seed: 0,
            max_worker_restarts: 4,
        }
    }
}

/// Handle for one submitted request; resolves to exactly one reply.
#[derive(Debug)]
pub struct ResponseHandle {
    id: String,
    rx: Receiver<ServeReply>,
    stats: Arc<StatsCollector>,
}

impl ResponseHandle {
    /// The request id this handle resolves.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Blocks until the reply arrives. A worker that died without
    /// answering surfaces as a typed [`RejectReason::WorkerFailure`].
    #[must_use]
    pub fn wait(self) -> ServeReply {
        match self.rx.recv() {
            Ok(reply) => {
                if let ServeReply::Rejected { reason, .. } = &reply {
                    self.stats.record_rejected(reason);
                }
                reply
            }
            Err(_) => {
                let reason = RejectReason::WorkerFailure;
                self.stats.record_rejected(&reason);
                ServeReply::Rejected { id: self.id, reason }
            }
        }
    }
}

/// The hot-swappable model: the snapshot every (re)spawned or swapping
/// worker hydrates from, plus a generation counter that lets workers
/// detect a swap with one atomic load per batch.
///
/// The swap protocol is drain-free by construction: installing a new
/// snapshot only changes what *future* hydrations read. A worker that
/// already popped a batch finishes it on its current replica; it notices
/// the new generation before the *next* batch and rehydrates then. No
/// request is ever dropped or re-queued by a swap.
#[derive(Debug)]
struct ModelSlot {
    /// Current snapshot and its generation, updated together.
    current: Mutex<(Arc<PipelineSnapshot>, u64)>,
    /// Mirror of the generation inside `current`, readable without the
    /// lock so the per-batch check stays off the swap mutex.
    generation: AtomicU64,
}

impl ModelSlot {
    fn new(snapshot: Arc<PipelineSnapshot>) -> ModelSlot {
        ModelSlot { current: Mutex::new((snapshot, 0)), generation: AtomicU64::new(0) }
    }

    /// The latest snapshot and its generation.
    fn current(&self) -> (Arc<PipelineSnapshot>, u64) {
        let guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&guard.0), guard.1)
    }

    /// Generation of the latest snapshot (lock-free).
    fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Installs a new snapshot and returns its generation.
    fn install(&self, snapshot: PipelineSnapshot) -> u64 {
        let mut guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let generation = guard.1 + 1;
        *guard = (Arc::new(snapshot), generation);
        self.generation.store(generation, Ordering::SeqCst);
        generation
    }
}

/// Everything a worker shares with its peers and the watchdog.
#[derive(Clone)]
struct WorkerShared {
    queue: Arc<RequestQueue>,
    cache: Arc<Mutex<ConditionCache>>,
    stats: Arc<StatsCollector>,
    faults: Option<Arc<FaultPlan>>,
    slot: Arc<ModelSlot>,
}

/// How a worker thread ended, as seen by the watchdog. A thread that
/// panicked instead of returning shows up as `Err` from `join`.
enum WorkerOutcome {
    /// Clean exit: the queue drained out under shutdown.
    Drained,
    /// The snapshot would not hydrate. Deterministic — the same bytes
    /// fail the same way — so the watchdog does not burn restarts on it.
    HydrationFailed,
    /// The worker caught an in-request panic, answered it with a typed
    /// reply, finished its batch, and exited so a fresh replica can take
    /// its slot.
    Suspect,
}

/// Outcome of a successful registry-backed model swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapOutcome {
    /// The registry entry that was installed.
    pub entry: RegistryEntry,
    /// The model-slot generation the swap produced; workers rehydrate to
    /// it before their next batch.
    pub generation: u64,
}

/// The running worker pool. Dropping it without [`ServeRuntime::shutdown`]
/// leaks the workers; always shut down for a graceful drain.
#[derive(Debug)]
pub struct ServeRuntime {
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    cache: Arc<Mutex<ConditionCache>>,
    slot: Arc<ModelSlot>,
    faults: Option<Arc<FaultPlan>>,
    registry: Mutex<Option<ModelRegistry>>,
    active_model: Mutex<Option<(String, u32)>>,
    next_ordinal: AtomicU64,
    next_swap_ordinal: AtomicU64,
    watchdog: JoinHandle<()>,
}

impl ServeRuntime {
    /// Spawns `config.workers` threads, each hydrating a replica from the
    /// snapshot, plus a watchdog that respawns dead workers, and starts
    /// serving.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`, `config.max_batch == 0`, or a
    /// thread cannot be spawned. A snapshot that fails to hydrate does
    /// *not* panic: the affected workers exit with a typed failure
    /// recorded in stats, and queued requests are rejected with
    /// `worker_error` once no worker remains.
    #[must_use]
    pub fn start(snapshot: PipelineSnapshot, config: ServeConfig) -> Self {
        ServeRuntime::start_with_faults(snapshot, config, None)
    }

    /// [`ServeRuntime::start`], plus a deterministic [`FaultPlan`] the
    /// workers consult per request. Tests use this to trigger panics,
    /// worker deaths, NaN outputs and cache corruption on exact requests.
    ///
    /// # Panics
    ///
    /// As [`ServeRuntime::start`].
    #[must_use]
    pub fn start_with_faults(
        snapshot: PipelineSnapshot,
        config: ServeConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(config.workers > 0, "serve runtime needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let slot = Arc::new(ModelSlot::new(Arc::new(snapshot)));
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let stats = Arc::new(StatsCollector::new());
        let cache = Arc::new(Mutex::new(ConditionCache::new(config.cache_capacity)));
        let shared = WorkerShared {
            queue: Arc::clone(&queue),
            cache: Arc::clone(&cache),
            stats: Arc::clone(&stats),
            faults: faults.clone(),
            slot: Arc::clone(&slot),
        };
        let mut slots: Vec<Option<JoinHandle<WorkerOutcome>>> = (0..config.workers)
            .map(|i| {
                let handle =
                    spawn_worker(i, 0, shared.clone(), config).expect("spawn serve worker");
                Some(handle)
            })
            .collect();
        let watchdog = std::thread::Builder::new()
            .name("aero-serve-watchdog".into())
            .spawn(move || watchdog_loop(&shared, config, &mut slots))
            .expect("spawn serve watchdog");
        ServeRuntime {
            queue,
            stats,
            cache,
            slot,
            faults,
            registry: Mutex::new(None),
            active_model: Mutex::new(None),
            next_ordinal: AtomicU64::new(0),
            next_swap_ordinal: AtomicU64::new(0),
            watchdog,
        }
    }

    /// Enqueues a request, returning a handle for its reply.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] under backpressure,
    /// [`RejectReason::ShuttingDown`] once a drain began (including the
    /// terminal drain after every worker died).
    pub fn submit(&self, request: GenerateRequest) -> Result<ResponseHandle, RejectReason> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let id = request.id.clone();
        let deadline = request.deadline.map(|d| now + d);
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::SeqCst);
        let pending = Pending { request, ordinal, enqueued: now, deadline, responder: tx };
        match self.queue.push(pending) {
            Ok(()) => {
                self.stats.set_queue_depth(self.queue.len());
                Ok(ResponseHandle { id, rx, stats: Arc::clone(&self.stats) })
            }
            Err(reason) => {
                self.stats.record_rejected(&reason);
                Err(reason)
            }
        }
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A point-in-time statistics report.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// The unified metric snapshot: this runtime's serving counters
    /// merged with the process-global ambient metrics (tensor kernels,
    /// sampler spans, training counters).
    #[must_use]
    pub fn metrics(&self) -> aero_obs::MetricsSnapshot {
        self.stats.metrics_snapshot()
    }

    /// Attaches (or replaces) the model registry backing
    /// [`ServeRuntime::swap_from_registry`] and [`ServeRuntime::list_models`].
    pub fn set_registry(&self, registry: ModelRegistry) {
        *self.registry.lock().unwrap_or_else(PoisonError::into_inner) = Some(registry);
    }

    /// The registry model currently serving, as `(name, version)`. `None`
    /// when the runtime still serves its boot snapshot.
    #[must_use]
    pub fn active_model(&self) -> Option<(String, u32)> {
        self.active_model.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The model-slot generation workers are converging to.
    #[must_use]
    pub fn model_generation(&self) -> u64 {
        self.slot.generation()
    }

    /// Every model in the attached registry with its integrity state.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no registry is attached or its index is
    /// malformed.
    pub fn list_models(&self) -> Result<Vec<(RegistryEntry, IntegrityState)>, ModelError> {
        let registry = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| ModelError::Meta("no model registry attached".into()))?;
        let entries = registry.entries()?;
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let state = registry.verify(&entry)?;
            out.push((entry, state));
        }
        Ok(out)
    }

    /// Installs a new snapshot directly. In-flight batches finish on the
    /// old replicas; each worker rehydrates before its next batch, so no
    /// request is dropped. The condition cache is cleared — its entries
    /// were computed by the outgoing model.
    pub fn swap_snapshot(&self, snapshot: PipelineSnapshot) -> u64 {
        let generation = self.slot.install(snapshot);
        lock_cache(&self.cache).clear();
        aero_obs::counter!("serve.swap.count").inc();
        aero_obs::gauge!("serve.swap.generation").set(generation as f64);
        generation
    }

    /// Resolves `name` (optionally pinned to a version) in the attached
    /// registry, loads and CRC-verifies the artifact, and installs the
    /// reassembled snapshot via [`ServeRuntime::swap_snapshot`].
    ///
    /// Failure at any point — unknown model, corrupt artifact, malformed
    /// metadata — leaves the currently installed model serving untouched;
    /// a swap is atomic from the workers' point of view.
    ///
    /// # Errors
    ///
    /// [`ModelError::Meta`] when no registry is attached or the name does
    /// not resolve; [`ModelError::Corrupt`] /
    /// [`ModelError::VersionMismatch`] when the artifact fails
    /// verification.
    pub fn swap_from_registry(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<SwapOutcome, ModelError> {
        let ordinal = self.next_swap_ordinal.fetch_add(1, Ordering::SeqCst);
        let result = self.try_swap_from_registry(name, version, ordinal);
        if result.is_err() {
            aero_obs::counter!("serve.swap.rejected").inc();
        }
        result
    }

    fn try_swap_from_registry(
        &self,
        name: &str,
        version: Option<u32>,
        swap_ordinal: u64,
    ) -> Result<SwapOutcome, ModelError> {
        let registry = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| ModelError::Meta("no model registry attached".into()))?;
        let entry = registry.resolve(name, version)?;
        let mut bytes = std::fs::read(registry.path_of(&entry))?;
        if let Some(SwapFault::CorruptArtifact) =
            self.faults.as_ref().and_then(|plan| plan.take_swap(swap_ordinal))
        {
            let mid = bytes.len() / 2;
            if let Some(byte) = bytes.get_mut(mid) {
                *byte ^= 0x01;
            }
        }
        // CRC and structural verification happen here, before anything
        // reaches the model slot.
        let artifact = ModelArtifact::from_bytes(bytes)?;
        let snapshot = snapshot_from_artifact(&artifact)?;
        let generation = self.swap_snapshot(snapshot);
        *self.active_model.lock().unwrap_or_else(PoisonError::into_inner) =
            Some((entry.name.clone(), entry.version));
        Ok(SwapOutcome { entry, generation })
    }

    /// Graceful drain: stops admitting work, lets the workers finish
    /// everything already queued, joins them, and returns final stats.
    #[must_use]
    pub fn shutdown(self) -> StatsReport {
        self.queue.begin_shutdown();
        let _ = self.watchdog.join();
        self.stats.report()
    }
}

fn spawn_worker(
    slot: usize,
    generation: usize,
    shared: WorkerShared,
    config: ServeConfig,
) -> std::io::Result<JoinHandle<WorkerOutcome>> {
    std::thread::Builder::new()
        .name(format!("aero-serve-{slot}.{generation}"))
        .spawn(move || worker_loop(&shared, config))
}

/// Supervises the worker slots: joins finished workers, respawns the ones
/// that died (panic or suspect exit) while restarts remain, and — once no
/// worker is left — fails all queued work with a typed reason so clients
/// never hang on a dead pool. Respawned workers hydrate from the model
/// slot, so they always come up on the latest installed model.
fn watchdog_loop(
    shared: &WorkerShared,
    config: ServeConfig,
    slots: &mut [Option<JoinHandle<WorkerOutcome>>],
) {
    let mut restarts = 0usize;
    let mut generation = 0usize;
    loop {
        let mut live = 0usize;
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                let Some(handle) = slot.take() else { continue };
                match handle.join() {
                    Ok(WorkerOutcome::Drained | WorkerOutcome::HydrationFailed) => {}
                    // A worker that died is replaced even mid-shutdown:
                    // its requeued batch still has to be drained, and the
                    // restart budget bounds the loop either way. A failed
                    // respawn leaves the slot empty; the live count below
                    // then treats it like any other dead worker.
                    Ok(WorkerOutcome::Suspect) | Err(_) => {
                        if restarts < config.max_worker_restarts {
                            if let Ok(replacement) =
                                spawn_worker(i, generation + 1, shared.clone(), config)
                            {
                                restarts += 1;
                                generation += 1;
                                shared.stats.record_worker_restart();
                                *slot = Some(replacement);
                            }
                        }
                    }
                }
            }
            if slot.is_some() {
                live += 1;
            }
        }
        if live == 0 {
            // Nobody will ever pop again. On a graceful shutdown the queue
            // is already drained and this is a no-op; on a collapsed pool
            // it converts every stranded request into a typed rejection.
            shared.queue.begin_shutdown();
            for pending in shared.queue.drain_all() {
                pending.reject(RejectReason::WorkerError {
                    detail: "no live serving workers remain".into(),
                });
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One worker's private serving state: a hydrated replica plus the
/// conditioning exemplar and fixed caption it derives from. Rebuilt
/// whenever the worker adopts a new model-slot generation.
struct Replica {
    pipeline: AeroDiffusionPipeline,
    item: DatasetItem,
    caption_g: String,
}

impl Replica {
    /// Hydrates a fresh replica from `snapshot`. `None` mirrors a failed
    /// hydration — the snapshot's bytes do not decode, or the reference
    /// dataset came up empty.
    fn build(snapshot: &PipelineSnapshot, config: &ServeConfig) -> Option<Replica> {
        let pipeline = snapshot.hydrate().ok()?;
        let reference = build_dataset(&DatasetConfig {
            n_scenes: 1,
            image_size: pipeline.config().vision.image_size,
            seed: config.reference_seed,
            generator: SceneGeneratorConfig::default(),
        });
        let item = reference.items.into_iter().next()?;
        // A fixed caption G makes the encode a pure function of the
        // request's prompt (G'), which is what lets the condition cache
        // key on it.
        let caption_g = pipeline.caption_for(&item, &mut StdRng::seed_from_u64(0));
        Some(Replica { pipeline, item, caption_g })
    }
}

/// One worker: hydrate a replica from the model slot, then serve batches
/// until the queue drains out or the worker turns suspect. Before each
/// batch the worker compares its generation against the slot; on a
/// mismatch it rehydrates from the newly installed snapshot, so a swap
/// never interrupts a batch already being served.
fn worker_loop(shared: &WorkerShared, config: ServeConfig) -> WorkerOutcome {
    let (snapshot, mut generation) = shared.slot.current();
    let Some(mut replica) = Replica::build(&snapshot, &config) else {
        shared.stats.record_hydration_failure();
        return WorkerOutcome::HydrationFailed;
    };
    while let Some(batch) = shared.queue.pop_batch(config.max_batch, config.batch_wait) {
        if shared.slot.generation() != generation {
            let (snapshot, new_generation) = shared.slot.current();
            match Replica::build(&snapshot, &config) {
                Some(fresh) => {
                    replica = fresh;
                    aero_obs::counter!("serve.swap.worker_rehydrated").inc();
                }
                // The new snapshot won't hydrate: keep serving on the old
                // replica rather than dying with work in hand. Adopting
                // the generation anyway stops this worker from re-failing
                // the hydration on every subsequent batch.
                None => {
                    shared.stats.record_hydration_failure();
                    aero_obs::counter!("serve.swap.fallback").inc();
                }
            }
            generation = new_generation;
        }
        if !serve_batch(
            &replica.pipeline,
            &replica.item,
            &replica.caption_g,
            batch,
            shared,
            &config,
        ) {
            // An in-request panic was caught and answered, but this
            // replica's internal state is no longer above suspicion.
            // Exit after the batch; the watchdog brings up a fresh one.
            return WorkerOutcome::Suspect;
        }
    }
    WorkerOutcome::Drained
}

/// Locks the condition cache, recovering from poison: the cache holds
/// only recomputable embeddings, so a panic in one worker must not
/// cascade lock panics through every survivor.
fn lock_cache(cache: &Mutex<ConditionCache>) -> MutexGuard<'_, ConditionCache> {
    cache.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tensor_is_finite(t: &Tensor) -> bool {
    t.as_slice().iter().all(|v| v.is_finite())
}

/// A request annotated with everything measured before sampling.
struct Job {
    pending: Pending,
    queue_us: u64,
    encode_us: u64,
    cache_hit: bool,
    cond: Tensor,
    /// Injected [`Fault::NanLatents`]: poison this request's latents
    /// after sampling so the output guard has something to catch.
    nan_latents: bool,
}

/// Serves one popped batch: group by sampler settings, encode through the
/// cache, run one coalesced sampler call per group, decode per request.
/// Returns `false` if the worker caught an in-request panic and should be
/// replaced after this batch.
fn serve_batch(
    replica: &AeroDiffusionPipeline,
    item: &DatasetItem,
    caption_g: &str,
    batch: Vec<Pending>,
    shared: &WorkerShared,
    config: &ServeConfig,
) -> bool {
    let dequeued = Instant::now();
    shared.stats.set_queue_depth(shared.queue.len());
    // Pull this batch's scheduled faults up front. KillWorker must fire
    // before any request is served: the whole batch goes back to the
    // queue (so a replacement finishes it), any other faults taken with
    // it are re-scheduled for the retry, and the worker dies the way a
    // real crash would — an uncaught panic.
    let mut batch_faults: HashMap<u64, Fault> = HashMap::new();
    if let Some(plan) = &shared.faults {
        for pending in &batch {
            if let Some(fault) = plan.take(pending.ordinal) {
                batch_faults.insert(pending.ordinal, fault);
            }
        }
        if batch_faults.values().any(|f| matches!(f, Fault::KillWorker)) {
            for (ordinal, fault) in batch_faults {
                if !matches!(fault, Fault::KillWorker) {
                    plan.schedule(ordinal, fault);
                }
            }
            shared.queue.requeue(batch);
            panic!("injected fault: worker killed mid-batch");
        }
    }
    let mut healthy = true;
    // Requests only share a sampler call when they agree on the settings
    // that alter it; override combinations are grouped in arrival order.
    let mut groups: Vec<((usize, u32), Vec<Pending>)> = Vec::new();
    for pending in batch {
        let steps = pending.request.steps.unwrap_or(config.steps).max(1);
        let guidance = pending.request.guidance_scale.unwrap_or(config.guidance_scale);
        let key = (steps, guidance.to_bits());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pending),
            None => groups.push((key, vec![pending])),
        }
    }
    for ((steps, guidance_bits), members) in groups {
        let guidance = f32::from_bits(guidance_bits);
        let sampler = DdimSampler::new(steps, guidance);
        let mut jobs: Vec<Job> = Vec::new();
        for pending in members {
            let fault = batch_faults.remove(&pending.ordinal);
            if let Some(Fault::DelayMs(ms)) = fault {
                std::thread::sleep(Duration::from_millis(ms));
            }
            let queue_us = micros(dequeued.saturating_duration_since(pending.enqueued));
            let started = Instant::now();
            let id = pending.request.id.clone();
            let responder = pending.responder.clone();
            // Everything per-request and fallible runs under the unwind
            // guard: a panic here costs one reply, not the whole batch.
            let prepared = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, Some(Fault::PanicRequest)) {
                    panic!("injected fault: panic while preparing request");
                }
                prepare_condition(
                    replica,
                    item,
                    caption_g,
                    &pending.request,
                    guidance,
                    fault,
                    shared,
                )
            }));
            match prepared {
                Ok((cond, cache_hit)) => jobs.push(Job {
                    pending,
                    queue_us,
                    encode_us: micros(started.elapsed()),
                    cache_hit,
                    cond,
                    nan_latents: matches!(fault, Some(Fault::NanLatents)),
                }),
                Err(_) => {
                    shared.stats.record_worker_panic();
                    healthy = false;
                    let _ = responder.send(ServeReply::Rejected {
                        id,
                        reason: RejectReason::WorkerError {
                            detail: "panic caught while serving this request".into(),
                        },
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        let n = jobs.len();
        shared.stats.record_batch(n);
        let [c, h, w] = replica.latent_shape();
        let conds: Vec<&Tensor> = jobs.iter().map(|j| &j.cond).collect();
        let cond_batch = Tensor::concat(&conds, 0);
        // Each request's private noise stream: same seed, same bytes,
        // whatever else rides in the batch.
        let noise: Vec<Tensor> = jobs
            .iter()
            .map(|j| {
                Tensor::randn(&[1, c, h, w], &mut StdRng::seed_from_u64(j.pending.request.seed))
            })
            .collect();
        let noise_refs: Vec<&Tensor> = noise.iter().collect();
        let z_init = Tensor::concat(&noise_refs, 0);
        let sample_started = Instant::now();
        let z = replica.sample_latents(&sampler, z_init, &cond_batch);
        let sample_us = micros(sample_started.elapsed());
        for (i, job) in jobs.into_iter().enumerate() {
            let decode_started = Instant::now();
            let latent = if job.nan_latents {
                Tensor::full(&[c, h, w], f32::NAN)
            } else {
                z.narrow(0, i, 1).reshape(&[c, h, w])
            };
            // Output guard: never decode (or return) a non-finite latent.
            if !tensor_is_finite(&latent) {
                shared.stats.record_nonfinite_output();
                let _ = job.pending.responder.send(ServeReply::Rejected {
                    id: job.pending.request.id.clone(),
                    reason: RejectReason::WorkerError {
                        detail: "sampler produced non-finite latents".into(),
                    },
                });
                continue;
            }
            let image = replica.decode_latent(&latent);
            let rgb8: Vec<u8> = image
                .to_tensor()
                .as_slice()
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
                .collect();
            let latency = StageLatency {
                queue_us: job.queue_us,
                encode_us: job.encode_us,
                sample_us,
                decode_us: micros(decode_started.elapsed()),
            };
            shared.stats.record_completed(latency, job.cache_hit);
            let reply = ServeReply::Image(GeneratedImage {
                id: job.pending.request.id.clone(),
                width: image.width(),
                height: image.height(),
                rgb8,
                latency,
                batch_size: n,
                cache_hit: job.cache_hit,
            });
            // A client that dropped its handle is gone; nothing to do.
            let _ = job.pending.responder.send(reply);
        }
    }
    healthy
}

/// Resolves one request's condition embedding through the cache,
/// validating cached entries and applying a [`Fault::CorruptCacheEntry`]
/// injection after the fact.
fn prepare_condition(
    replica: &AeroDiffusionPipeline,
    item: &DatasetItem,
    caption_g: &str,
    request: &GenerateRequest,
    guidance: f32,
    fault: Option<Fault>,
    shared: &WorkerShared,
) -> (Tensor, bool) {
    let key = ConditionKey::new(&request.prompt, replica.variant(), guidance);
    // One lock scope for the whole lookup: matching directly on the
    // locked `get` would keep the guard alive across the arms and
    // self-deadlock on the eviction below.
    let cached = {
        let mut cache = lock_cache(&shared.cache);
        match cache.get(&key) {
            Some(cond) if tensor_is_finite(&cond) => Some(cond),
            Some(_) => {
                // A corrupt entry must not poison every future request
                // that shares this prompt: evict, count, recompute below.
                cache.remove(&key);
                drop(cache);
                shared.stats.record_cache_corruption();
                None
            }
            None => None,
        }
    };
    let (cond, cache_hit) = match cached {
        Some(cond) => (cond, true),
        None => {
            let cond = replica.encode_condition(item, caption_g, &request.prompt);
            lock_cache(&shared.cache).insert(key.clone(), cond.clone());
            (cond, false)
        }
    };
    if matches!(fault, Some(Fault::CorruptCacheEntry)) {
        lock_cache(&shared.cache).insert(key, Tensor::full(cond.shape(), f32::NAN));
    }
    (cond, cache_hit)
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_tracks_pipeline_sampler_settings() {
        let pc = PipelineConfig::smoke();
        let sc = ServeConfig::for_pipeline(&pc);
        assert_eq!(sc.steps, pc.diffusion.ddim_steps);
        assert_eq!(sc.guidance_scale, pc.diffusion.guidance_scale);
        assert!(sc.workers >= 1);
        assert!(sc.max_batch >= 1);
        assert!(sc.max_worker_restarts >= 1);
    }
}
