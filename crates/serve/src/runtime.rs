//! The serving runtime: a worker pool over one immutable trained
//! pipeline, fed by the bounded queue and the dynamic micro-batcher.
//!
//! The trained pipeline itself is not shareable across threads (its
//! parameters live in `Rc`-backed autograd nodes), so the runtime ships a
//! [`PipelineSnapshot`] — plain bytes — to every worker and each worker
//! hydrates a private replica once at startup. That is the standard
//! immutable-weights / many-replicas deployment shape: weights are frozen
//! at snapshot time, so replicas are exact clones and any worker may
//! serve any request.
//!
//! Determinism contract: a request's image depends only on its own
//! `(prompt, seed, steps, guidance)`. Each request's initial latent is
//! drawn from a private `StdRng` seeded with the request seed, and the
//! DDIM reverse process is row-independent, so coalescing requests into
//! one `[n, c, h, w]` sampler call changes throughput, never bytes.

use crate::cache::{ConditionCache, ConditionKey};
use crate::queue::{Pending, RequestQueue};
use crate::request::{GenerateRequest, GeneratedImage, RejectReason, ServeReply, StageLatency};
use crate::stats::{StatsCollector, StatsReport};
use aero_diffusion::DdimSampler;
use aero_scene::{build_dataset, DatasetConfig, DatasetItem, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each holding one pipeline replica.
    pub workers: usize,
    /// Most requests coalesced into one sampler call.
    pub max_batch: usize,
    /// Bounded queue capacity; beyond it submissions are rejected.
    pub queue_capacity: usize,
    /// How long a worker lingers for stragglers to fill a batch.
    pub batch_wait: Duration,
    /// Condition-embedding LRU capacity (entries).
    pub cache_capacity: usize,
    /// Default DDIM steps (requests may override per call).
    pub steps: usize,
    /// Default guidance scale (requests may override per call).
    pub guidance_scale: f32,
    /// Seed of the reference scene used as the conditioning exemplar.
    pub reference_seed: u64,
}

impl ServeConfig {
    /// Defaults matched to a trained pipeline's own sampler settings.
    #[must_use]
    pub fn for_pipeline(config: &PipelineConfig) -> Self {
        ServeConfig {
            workers: aero_tensor::parallel::suggested_threads(2),
            max_batch: 8,
            queue_capacity: 32,
            batch_wait: Duration::from_millis(2),
            cache_capacity: 64,
            steps: config.diffusion.ddim_steps,
            guidance_scale: config.diffusion.guidance_scale,
            reference_seed: 0,
        }
    }
}

/// Handle for one submitted request; resolves to exactly one reply.
#[derive(Debug)]
pub struct ResponseHandle {
    id: String,
    rx: Receiver<ServeReply>,
    stats: Arc<StatsCollector>,
}

impl ResponseHandle {
    /// The request id this handle resolves.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Blocks until the reply arrives. A worker that died without
    /// answering surfaces as a typed [`RejectReason::WorkerFailure`].
    #[must_use]
    pub fn wait(self) -> ServeReply {
        match self.rx.recv() {
            Ok(reply) => {
                if let ServeReply::Rejected { reason, .. } = &reply {
                    self.stats.record_rejected(reason);
                }
                reply
            }
            Err(_) => {
                let reason = RejectReason::WorkerFailure;
                self.stats.record_rejected(&reason);
                ServeReply::Rejected { id: self.id, reason }
            }
        }
    }
}

/// The running worker pool. Dropping it without [`ServeRuntime::shutdown`]
/// leaks the workers; always shut down for a graceful drain.
#[derive(Debug)]
pub struct ServeRuntime {
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Spawns `config.workers` threads, each hydrating a replica from the
    /// snapshot, and starts serving.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`, `config.max_batch == 0`, or a
    /// worker thread cannot be spawned. A snapshot that fails to hydrate
    /// panics inside the worker, surfacing as worker failures.
    #[must_use]
    pub fn start(snapshot: PipelineSnapshot, config: ServeConfig) -> Self {
        assert!(config.workers > 0, "serve runtime needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let snapshot = Arc::new(snapshot);
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let stats = Arc::new(StatsCollector::new());
        let cache = Arc::new(Mutex::new(ConditionCache::new(config.cache_capacity)));
        let workers = (0..config.workers)
            .map(|i| {
                let snapshot = Arc::clone(&snapshot);
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("aero-serve-{i}"))
                    .spawn(move || worker_loop(&snapshot, &queue, &cache, &stats, config))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeRuntime { queue, stats, workers }
    }

    /// Enqueues a request, returning a handle for its reply.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] under backpressure,
    /// [`RejectReason::ShuttingDown`] once a drain began.
    pub fn submit(&self, request: GenerateRequest) -> Result<ResponseHandle, RejectReason> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let id = request.id.clone();
        let deadline = request.deadline.map(|d| now + d);
        let pending = Pending { request, enqueued: now, deadline, responder: tx };
        match self.queue.push(pending) {
            Ok(()) => Ok(ResponseHandle { id, rx, stats: Arc::clone(&self.stats) }),
            Err(reason) => {
                self.stats.record_rejected(&reason);
                Err(reason)
            }
        }
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A point-in-time statistics report.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// Graceful drain: stops admitting work, lets the workers finish
    /// everything already queued, joins them, and returns final stats.
    #[must_use]
    pub fn shutdown(self) -> StatsReport {
        self.queue.begin_shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
        self.stats.report()
    }
}

/// One worker: hydrate a replica, build the conditioning exemplar, then
/// serve batches until the queue drains out.
fn worker_loop(
    snapshot: &PipelineSnapshot,
    queue: &RequestQueue,
    cache: &Mutex<ConditionCache>,
    stats: &StatsCollector,
    config: ServeConfig,
) {
    let replica = snapshot.hydrate().expect("hydrate serving replica");
    let reference = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: replica.config().vision.image_size,
        seed: config.reference_seed,
        generator: SceneGeneratorConfig::default(),
    });
    let item = &reference.items[0];
    // A fixed caption G makes the encode a pure function of the request's
    // prompt (G'), which is what lets the condition cache key on it.
    let caption_g = replica.caption_for(item, &mut StdRng::seed_from_u64(0));
    while let Some(batch) = queue.pop_batch(config.max_batch, config.batch_wait) {
        serve_batch(&replica, item, &caption_g, batch, cache, stats, &config);
    }
}

/// A request annotated with everything measured before sampling.
struct Job {
    pending: Pending,
    queue_us: u64,
    encode_us: u64,
    cache_hit: bool,
    cond: Tensor,
}

/// Serves one popped batch: group by sampler settings, encode through the
/// cache, run one coalesced sampler call per group, decode per request.
fn serve_batch(
    replica: &AeroDiffusionPipeline,
    item: &DatasetItem,
    caption_g: &str,
    batch: Vec<Pending>,
    cache: &Mutex<ConditionCache>,
    stats: &StatsCollector,
    config: &ServeConfig,
) {
    let dequeued = Instant::now();
    // Requests only share a sampler call when they agree on the settings
    // that alter it; override combinations are grouped in arrival order.
    let mut groups: Vec<((usize, u32), Vec<Pending>)> = Vec::new();
    for pending in batch {
        let steps = pending.request.steps.unwrap_or(config.steps).max(1);
        let guidance = pending.request.guidance_scale.unwrap_or(config.guidance_scale);
        let key = (steps, guidance.to_bits());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pending),
            None => groups.push((key, vec![pending])),
        }
    }
    for ((steps, guidance_bits), members) in groups {
        let guidance = f32::from_bits(guidance_bits);
        let sampler = DdimSampler::new(steps, guidance);
        stats.record_batch(members.len());
        let jobs: Vec<Job> = members
            .into_iter()
            .map(|pending| {
                let queue_us = micros(dequeued.saturating_duration_since(pending.enqueued));
                let started = Instant::now();
                let key = ConditionKey::new(&pending.request.prompt, replica.variant(), guidance);
                let cached = cache.lock().expect("condition cache lock").get(&key);
                let (cond, cache_hit) = match cached {
                    Some(cond) => (cond, true),
                    None => {
                        let cond =
                            replica.encode_condition(item, caption_g, &pending.request.prompt);
                        cache.lock().expect("condition cache lock").insert(key, cond.clone());
                        (cond, false)
                    }
                };
                let encode_us = micros(started.elapsed());
                Job { pending, queue_us, encode_us, cache_hit, cond }
            })
            .collect();
        let n = jobs.len();
        let [c, h, w] = replica.latent_shape();
        let conds: Vec<&Tensor> = jobs.iter().map(|j| &j.cond).collect();
        let cond_batch = Tensor::concat(&conds, 0);
        // Each request's private noise stream: same seed, same bytes,
        // whatever else rides in the batch.
        let noise: Vec<Tensor> = jobs
            .iter()
            .map(|j| {
                Tensor::randn(&[1, c, h, w], &mut StdRng::seed_from_u64(j.pending.request.seed))
            })
            .collect();
        let noise_refs: Vec<&Tensor> = noise.iter().collect();
        let z_init = Tensor::concat(&noise_refs, 0);
        let sample_started = Instant::now();
        let z = replica.sample_latents(&sampler, z_init, &cond_batch);
        let sample_us = micros(sample_started.elapsed());
        for (i, job) in jobs.into_iter().enumerate() {
            let decode_started = Instant::now();
            let image = replica.decode_latent(&z.narrow(0, i, 1).reshape(&[c, h, w]));
            let rgb8: Vec<u8> = image
                .to_tensor()
                .as_slice()
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
                .collect();
            let latency = StageLatency {
                queue_us: job.queue_us,
                encode_us: job.encode_us,
                sample_us,
                decode_us: micros(decode_started.elapsed()),
            };
            stats.record_completed(latency, job.cache_hit);
            let reply = ServeReply::Image(GeneratedImage {
                id: job.pending.request.id.clone(),
                width: image.width(),
                height: image.height(),
                rgb8,
                latency,
                batch_size: n,
                cache_hit: job.cache_hit,
            });
            // A client that dropped its handle is gone; nothing to do.
            let _ = job.pending.responder.send(reply);
        }
    }
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_tracks_pipeline_sampler_settings() {
        let pc = PipelineConfig::smoke();
        let sc = ServeConfig::for_pipeline(&pc);
        assert_eq!(sc.steps, pc.diffusion.ddim_steps);
        assert_eq!(sc.guidance_scale, pc.diffusion.guidance_scale);
        assert!(sc.workers >= 1);
        assert!(sc.max_batch >= 1);
    }
}
