//! Serving protocol types: requests, replies, and typed rejections.

use crate::base64;
use crate::json::Json;
use std::fmt;
use std::time::Duration;

/// One text-to-aerial-image generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: String,
    /// The target description `G'` steering generation.
    pub prompt: String,
    /// Seed driving this request's private noise stream. The same seed
    /// yields byte-identical output regardless of how the request was
    /// batched.
    pub seed: u64,
    /// Classifier-free guidance scale override (default: the runtime's).
    pub guidance_scale: Option<f32>,
    /// DDIM step count override (default: the runtime's).
    pub steps: Option<usize>,
    /// Deadline measured from submission; a request still queued when it
    /// expires is rejected instead of sampled.
    pub deadline: Option<Duration>,
}

impl GenerateRequest {
    /// A request with defaults for everything but id, prompt and seed.
    #[must_use]
    pub fn new(id: impl Into<String>, prompt: impl Into<String>, seed: u64) -> Self {
        GenerateRequest {
            id: id.into(),
            prompt: prompt.into(),
            seed,
            guidance_scale: None,
            steps: None,
            deadline: None,
        }
    }

    /// Parses the NDJSON form:
    /// `{"type":"generate","id":…,"prompt":…,"seed":…,"guidance":…,"steps":…,"deadline_ms":…}`.
    /// Only `prompt` is required; `id` defaults to `fallback_id`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field.
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<Self, String> {
        let prompt = v
            .get("prompt")
            .and_then(Json::as_str)
            .ok_or_else(|| "generate request needs a string \"prompt\"".to_string())?;
        let id = v.get("id").and_then(Json::as_str).unwrap_or(fallback_id);
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => {
                s.as_u64().ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
            }
        };
        let guidance_scale = match v.get("guidance") {
            None => None,
            Some(g) => {
                Some(g.as_f64().ok_or_else(|| "\"guidance\" must be a number".to_string())? as f32)
            }
        };
        let steps = match v.get("steps") {
            None => None,
            Some(s) => {
                Some(s.as_u64().ok_or_else(|| "\"steps\" must be a positive integer".to_string())?
                    as usize)
            }
        };
        let deadline = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(Duration::from_millis(
                d.as_u64().ok_or_else(|| "\"deadline_ms\" must be milliseconds".to_string())?,
            )),
        };
        Ok(GenerateRequest {
            id: id.to_string(),
            prompt: prompt.to_string(),
            seed,
            guidance_scale,
            steps,
            deadline,
        })
    }
}

/// Why the runtime refused to take (or finish) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity — explicit backpressure, the
    /// client should retry later or shed load.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The runtime is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExceeded,
    /// The serving worker disappeared before answering (worker panic).
    WorkerFailure,
    /// The worker hit a recoverable fault while serving this specific
    /// request (a panic caught mid-request, a non-finite sampler output,
    /// or a failed replica hydration); other requests were unaffected.
    WorkerError {
        /// Human-readable description of what failed.
        detail: String,
    },
}

impl RejectReason {
    /// Stable machine-readable tag used on the wire.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::WorkerFailure => "worker_failure",
            RejectReason::WorkerError { .. } => "worker_error",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RejectReason::ShuttingDown => write!(f, "runtime is shutting down"),
            RejectReason::DeadlineExceeded => write!(f, "deadline expired while queued"),
            RejectReason::WorkerFailure => write!(f, "serving worker failed"),
            RejectReason::WorkerError { detail } => write!(f, "worker error: {detail}"),
        }
    }
}

/// Per-stage wall-clock breakdown of one served request, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatency {
    /// Time spent waiting in the request queue.
    pub queue_us: u64,
    /// Condition-encode time (0 on a cache hit).
    pub encode_us: u64,
    /// This request's share context: the wall time of the coalesced
    /// sampler call it rode in.
    pub sample_us: u64,
    /// VAE decode + quantization time.
    pub decode_us: u64,
}

impl StageLatency {
    /// Total latency across stages.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.encode_us + self.sample_us + self.decode_us
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("queue", self.queue_us.into()),
            ("encode", self.encode_us.into()),
            ("sample", self.sample_us.into()),
            ("decode", self.decode_us.into()),
        ])
    }
}

/// A successfully served image.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedImage {
    /// Echo of the request id.
    pub id: String,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Channel-major (`[3, h, w]`) RGB bytes, one byte per channel value.
    pub rgb8: Vec<u8>,
    /// Per-stage latency breakdown.
    pub latency: StageLatency,
    /// How many requests the sampler call was coalesced over.
    pub batch_size: usize,
    /// Whether the condition embedding came from the cache.
    pub cache_hit: bool,
}

/// The reply to one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The request was served.
    Image(GeneratedImage),
    /// The request was rejected; the reason says at which stage.
    Rejected {
        /// Echo of the request id.
        id: String,
        /// The typed rejection.
        reason: RejectReason,
    },
}

impl ServeReply {
    /// The NDJSON wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            ServeReply::Image(img) => Json::obj(vec![
                ("type", "image".into()),
                ("id", img.id.clone().into()),
                ("width", img.width.into()),
                ("height", img.height.into()),
                ("rgb8_b64", base64::encode(&img.rgb8).into()),
                ("batch_size", img.batch_size.into()),
                ("cache_hit", img.cache_hit.into()),
                ("latency_us", img.latency.to_json()),
            ]),
            ServeReply::Rejected { id, reason } => Json::obj(vec![
                ("type", "error".into()),
                ("id", id.clone().into()),
                ("reason", reason.tag().into()),
                ("detail", reason.to_string().into()),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_request_parses_full_form() {
        let v = Json::parse(
            r#"{"type":"generate","id":"a","prompt":"a park at night","seed":9,"guidance":3.5,"steps":12,"deadline_ms":250}"#,
        )
        .unwrap();
        let r = GenerateRequest::from_json(&v, "fallback").unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.prompt, "a park at night");
        assert_eq!(r.seed, 9);
        assert_eq!(r.guidance_scale, Some(3.5));
        assert_eq!(r.steps, Some(12));
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn generate_request_defaults() {
        let v = Json::parse(r#"{"prompt":"x"}"#).unwrap();
        let r = GenerateRequest::from_json(&v, "req-3").unwrap();
        assert_eq!(r.id, "req-3");
        assert_eq!(r.seed, 0);
        assert_eq!(r.guidance_scale, None);
    }

    #[test]
    fn generate_request_requires_prompt() {
        let v = Json::parse(r#"{"seed":1}"#).unwrap();
        assert!(GenerateRequest::from_json(&v, "x").is_err());
    }

    #[test]
    fn reply_wire_form_round_trips() {
        let reply = ServeReply::Image(GeneratedImage {
            id: "r".into(),
            width: 2,
            height: 1,
            rgb8: vec![0, 128, 255, 1, 2, 3],
            latency: StageLatency { queue_us: 1, encode_us: 2, sample_us: 3, decode_us: 4 },
            batch_size: 4,
            cache_hit: true,
        });
        let wire = reply.to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("image"));
        assert_eq!(
            base64::decode(v.get("rgb8_b64").and_then(Json::as_str).unwrap()).unwrap(),
            vec![0, 128, 255, 1, 2, 3]
        );
        assert_eq!(
            v.get("latency_us").and_then(|l| l.get("sample")).and_then(Json::as_u64),
            Some(3)
        );
    }
}
