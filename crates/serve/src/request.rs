//! Serving protocol types: requests, replies, and typed rejections.
//!
//! # Generate request fields
//!
//! | field         | type    | required | default                     |
//! |---------------|---------|----------|-----------------------------|
//! | `prompt`      | string  | yes*     | — (*optional when `task.prompt` is given) |
//! | `id`          | string  | no       | connection-assigned id      |
//! | `seed`        | u64     | no       | `0`                         |
//! | `guidance`    | number  | no       | runtime guidance scale      |
//! | `steps`       | integer | no       | runtime step count          |
//! | `deadline_ms` | integer | no       | no deadline                 |
//! | `tenant`      | string  | no       | `"default"` tenant          |
//! | `stream`      | boolean | no       | `false`                     |
//! | `task`        | object  | no       | text-to-image               |
//!
//! The optional `task` object selects an image-conditioned workload and
//! may override the sampling knobs for just that task:
//!
//! | task field    | type    | applies to      | default                 |
//! |---------------|---------|-----------------|-------------------------|
//! | `kind`        | string  | all             | `"text"` (`text\|view\|inpaint\|superres`) |
//! | `prompt`      | string  | all             | top-level `prompt`      |
//! | `guidance`    | number  | all             | top-level `guidance`    |
//! | `steps`       | integer | all             | top-level `steps`       |
//! | `image`       | object  | view/inpaint/superres | — (required)      |
//! | `source_view` | object  | view            | nadir (`altitude` 1.0, `pitch` 90, `heading` 0) |
//! | `target_view` | object  | view            | nadir                   |
//! | `boxes`       | array   | inpaint         | — (required, may be empty) |
//!
//! `image` is `{"width":…,"height":…,"rgb8_b64":…}` with channel-major
//! (`[3, h, w]`) RGB bytes — the same layout `image` replies use. Each
//! `boxes` entry is `{"label":…,"x0":…,"y0":…,"x1":…,"y1":…}` in pixel
//! coordinates with an object-class label (`"car"`, `"truck"`, …).
//! A request without a `task` key (or with `kind":"text"` and no other
//! task fields) parses exactly as the pre-task schema did.
//!
//! # Backoff guidance
//!
//! Rejections that are worth retrying (`overloaded`, `queue_full`)
//! carry or imply a backoff. `overloaded` replies include a
//! `retry_after_ms` field: treat it as the *minimum* wait and add
//! jitter — e.g. sleep a uniform draw from `[hint, 2·hint]` — before
//! resubmitting. Retrying at exactly the hint from many clients at once
//! re-creates the synchronized spike that shed them in the first place.
//! `queue_full` has no server-side hint; use your own exponential
//! backoff with jitter, starting around one batch interval.

use crate::base64;
use crate::json::Json;
use aero_scene::{Annotation, BBox, Homography, Image, ObjectClass, Viewpoint};
use aero_tensor::Tensor;
use aerodiffusion::{TaskKind, TaskSpec};
use std::fmt;
use std::time::Duration;

/// A client-supplied conditioning image on the wire: channel-major
/// (`[3, h, w]`) RGB bytes, one byte per channel value, base64-encoded
/// as `rgb8_b64` — the same layout `image` replies use, so a reply can
/// be fed straight back in as a task source.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagePayload {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Channel-major RGB bytes (`3 * height * width` of them).
    pub rgb8: Vec<u8>,
}

impl ImagePayload {
    /// Quantizes an image to its wire payload (round-to-nearest byte).
    #[must_use]
    pub fn from_image(image: &Image) -> Self {
        let rgb8 = image
            .to_tensor()
            .as_slice()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        ImagePayload { width: image.width(), height: image.height(), rgb8 }
    }

    /// Decodes the payload back to an image (`byte / 255`).
    #[must_use]
    pub fn to_image(&self) -> Image {
        let data: Vec<f32> = self.rgb8.iter().map(|&b| f32::from(b) / 255.0).collect();
        Image::from_tensor(&Tensor::from_vec(data, &[3, self.height, self.width]))
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let width = v
            .get("width")
            .and_then(Json::as_u64)
            .ok_or_else(|| "task image needs an integer \"width\"".to_string())?
            as usize;
        let height = v
            .get("height")
            .and_then(Json::as_u64)
            .ok_or_else(|| "task image needs an integer \"height\"".to_string())?
            as usize;
        let b64 = v
            .get("rgb8_b64")
            .and_then(Json::as_str)
            .ok_or_else(|| "task image needs a base64 string \"rgb8_b64\"".to_string())?;
        let rgb8 = base64::decode(b64).map_err(|e| format!("task image rgb8_b64: {e}"))?;
        if width == 0 || height == 0 || rgb8.len() != 3 * width * height {
            return Err(format!(
                "task image must carry 3*{width}*{height} rgb bytes, got {}",
                rgb8.len()
            ));
        }
        Ok(ImagePayload { width, height, rgb8 })
    }

    /// The wire form (`{"width":…,"height":…,"rgb8_b64":…}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("width", self.width.into()),
            ("height", self.height.into()),
            ("rgb8_b64", base64::encode(&self.rgb8).into()),
        ])
    }
}

/// The image-conditioned workload of a request, if any. `None` on a
/// [`GenerateRequest`] means plain text-to-image — the pre-task schema.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskPayload {
    /// Cross-view translation: re-project `image` from `source_view` to
    /// `target_view` through the parametric-camera homography prior.
    View {
        /// Source-view image.
        image: ImagePayload,
        /// Camera the source image was taken from.
        source_view: Viewpoint,
        /// Camera to re-project into.
        target_view: Viewpoint,
    },
    /// Keypoint-box inpainting: re-draw only the latent cells under
    /// `boxes`, pinning everything else to the source image.
    Inpaint {
        /// Image to edit. Must match the model's native resolution.
        image: ImagePayload,
        /// Labelled pixel-space boxes to re-draw.
        boxes: Vec<Annotation>,
    },
    /// Super-resolution: condition a full-resolution denoise on a
    /// low-resolution base image.
    SuperRes {
        /// Low-resolution base image (any size).
        image: ImagePayload,
    },
}

impl TaskPayload {
    /// The task discriminant.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        match self {
            TaskPayload::View { .. } => TaskKind::View,
            TaskPayload::Inpaint { .. } => TaskKind::Inpaint,
            TaskPayload::SuperRes { .. } => TaskKind::SuperRes,
        }
    }

    /// Lowers the wire payload to the typed task the pipeline runs.
    #[must_use]
    pub fn to_spec(&self, prompt: &str) -> TaskSpec {
        match self {
            TaskPayload::View { image, source_view, target_view } => {
                let source = image.to_image();
                let homography =
                    Homography::between(image.width, image.height, source_view, target_view);
                TaskSpec::view(source, homography, prompt)
            }
            TaskPayload::Inpaint { image, boxes } => {
                TaskSpec::inpaint(image.to_image(), boxes.clone(), prompt)
            }
            TaskPayload::SuperRes { image } => TaskSpec::superres(image.to_image(), prompt),
        }
    }

    /// The wire form of the `task` object (without the sampling-knob
    /// overrides, which live beside it).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let viewpoint_json = |vp: &Viewpoint| {
            Json::obj(vec![
                ("altitude", f64::from(vp.altitude).into()),
                ("pitch", f64::from(vp.pitch_deg).into()),
                ("heading", f64::from(vp.heading_deg).into()),
            ])
        };
        match self {
            TaskPayload::View { image, source_view, target_view } => Json::obj(vec![
                ("kind", self.kind().as_str().into()),
                ("image", image.to_json()),
                ("source_view", viewpoint_json(source_view)),
                ("target_view", viewpoint_json(target_view)),
            ]),
            TaskPayload::Inpaint { image, boxes } => Json::obj(vec![
                ("kind", self.kind().as_str().into()),
                ("image", image.to_json()),
                (
                    "boxes",
                    Json::Arr(
                        boxes
                            .iter()
                            .map(|b| {
                                Json::obj(vec![
                                    ("label", b.class.label().into()),
                                    ("x0", f64::from(b.bbox.x0).into()),
                                    ("y0", f64::from(b.bbox.y0).into()),
                                    ("x1", f64::from(b.bbox.x1).into()),
                                    ("y1", f64::from(b.bbox.y1).into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            TaskPayload::SuperRes { image } => {
                Json::obj(vec![("kind", self.kind().as_str().into()), ("image", image.to_json())])
            }
        }
    }
}

/// The parsed `task` object: the payload plus its sampling-knob
/// overrides, all still optional.
struct TaskEnvelope {
    payload: Option<TaskPayload>,
    prompt: Option<String>,
    guidance: Option<f32>,
    steps: Option<usize>,
}

impl TaskEnvelope {
    fn empty() -> Self {
        TaskEnvelope { payload: None, prompt: None, guidance: None, steps: None }
    }

    fn from_json(t: &Json) -> Result<Self, String> {
        let kind_str = match t.get("kind") {
            None => "text",
            Some(k) => k.as_str().ok_or_else(|| "\"task.kind\" must be a string".to_string())?,
        };
        let kind = TaskKind::parse(kind_str).ok_or_else(|| {
            format!("unknown task kind {kind_str:?} (expected text|view|inpaint|superres)")
        })?;
        let payload = match kind {
            TaskKind::Text => None,
            TaskKind::View => Some(TaskPayload::View {
                image: Self::image_field(t)?,
                source_view: Self::viewpoint_field(t, "source_view")?,
                target_view: Self::viewpoint_field(t, "target_view")?,
            }),
            TaskKind::Inpaint => Some(TaskPayload::Inpaint {
                image: Self::image_field(t)?,
                boxes: Self::boxes_field(t)?,
            }),
            TaskKind::SuperRes => Some(TaskPayload::SuperRes { image: Self::image_field(t)? }),
        };
        let prompt = match t.get("prompt") {
            None => None,
            Some(p) => Some(
                p.as_str()
                    .ok_or_else(|| "\"task.prompt\" must be a string".to_string())?
                    .to_string(),
            ),
        };
        let guidance = match t.get("guidance") {
            None => None,
            Some(g) => {
                Some(g.as_f64().ok_or_else(|| "\"task.guidance\" must be a number".to_string())?
                    as f32)
            }
        };
        let steps = match t.get("steps") {
            None => None,
            Some(s) => Some(
                s.as_u64().ok_or_else(|| "\"task.steps\" must be a positive integer".to_string())?
                    as usize,
            ),
        };
        Ok(TaskEnvelope { payload, prompt, guidance, steps })
    }

    fn image_field(t: &Json) -> Result<ImagePayload, String> {
        let v =
            t.get("image").ok_or_else(|| "this task kind needs an \"image\" object".to_string())?;
        ImagePayload::from_json(v)
    }

    fn viewpoint_field(t: &Json, field: &str) -> Result<Viewpoint, String> {
        let Some(v) = t.get(field) else {
            return Ok(Viewpoint::default());
        };
        let angle = |key: &str, default: f32| -> Result<f32, String> {
            match v.get(key) {
                None => Ok(default),
                Some(a) => Ok(a
                    .as_f64()
                    .ok_or_else(|| format!("\"task.{field}.{key}\" must be a number"))?
                    as f32),
            }
        };
        Ok(Viewpoint {
            altitude: angle("altitude", 1.0)?,
            pitch_deg: angle("pitch", 90.0)?,
            heading_deg: angle("heading", 0.0)?,
        })
    }

    fn boxes_field(t: &Json) -> Result<Vec<Annotation>, String> {
        let v = t.get("boxes").ok_or_else(|| "inpaint tasks need a \"boxes\" array".to_string())?;
        let Json::Arr(items) = v else {
            return Err("\"task.boxes\" must be an array".to_string());
        };
        items
            .iter()
            .map(|b| {
                let label = b
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "each box needs a string \"label\"".to_string())?;
                let class = ObjectClass::ALL
                    .into_iter()
                    .find(|c| c.label() == label)
                    .ok_or_else(|| format!("unknown box label {label:?}"))?;
                let coord = |key: &str| -> Result<f32, String> {
                    Ok(b.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("each box needs a number \"{key}\""))?
                        as f32)
                };
                Ok(Annotation {
                    class,
                    bbox: BBox::new(coord("x0")?, coord("y0")?, coord("x1")?, coord("y1")?),
                })
            })
            .collect()
    }
}

/// One text-to-aerial-image generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: String,
    /// The target description `G'` steering generation.
    pub prompt: String,
    /// Seed driving this request's private noise stream. The same seed
    /// yields byte-identical output regardless of how the request was
    /// batched.
    pub seed: u64,
    /// Classifier-free guidance scale override (default: the runtime's).
    pub guidance_scale: Option<f32>,
    /// DDIM step count override (default: the runtime's).
    pub steps: Option<usize>,
    /// Deadline measured from submission; a request still queued when it
    /// expires is rejected instead of sampled.
    pub deadline: Option<Duration>,
    /// Tenant the request is billed against for per-tenant admission
    /// control. Absent means the shared default tenant.
    pub tenant: Option<String>,
    /// When set, the server streams `preview` lines (quantized
    /// intermediate latents) while this request samples, before the
    /// final `image` line.
    pub stream: bool,
    /// The image-conditioned workload, if any. `None` (and `kind:"text"`
    /// on the wire) is plain text-to-image — the pre-task behavior.
    pub task: Option<TaskPayload>,
}

impl GenerateRequest {
    /// A request with defaults for everything but id, prompt and seed.
    #[must_use]
    pub fn new(id: impl Into<String>, prompt: impl Into<String>, seed: u64) -> Self {
        GenerateRequest {
            id: id.into(),
            prompt: prompt.into(),
            seed,
            guidance_scale: None,
            steps: None,
            deadline: None,
            tenant: None,
            stream: false,
            task: None,
        }
    }

    /// The workload discriminant ([`TaskKind::Text`] when no task was
    /// attached).
    #[must_use]
    pub fn task_kind(&self) -> TaskKind {
        self.task.as_ref().map_or(TaskKind::Text, TaskPayload::kind)
    }

    /// The tenant this request bills against (the shared `"default"`
    /// tenant when none was given).
    #[must_use]
    pub fn tenant_id(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }

    /// Parses the NDJSON form:
    /// `{"type":"generate","id":…,"prompt":…,"seed":…,"guidance":…,"steps":…,"deadline_ms":…,"tenant":…,"stream":…,"task":…}`.
    /// Only `prompt` is required (and it may instead live inside the
    /// optional `task` object); `id` defaults to `fallback_id`. Absent
    /// fields keep their defaults — see the module-level field tables —
    /// so pre-task clients parse unchanged. A nested `task.prompt`,
    /// `task.guidance`, or `task.steps` takes precedence over its
    /// top-level twin.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field.
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<Self, String> {
        let envelope = match v.get("task") {
            None => TaskEnvelope::empty(),
            Some(t) => TaskEnvelope::from_json(t)?,
        };
        let prompt = match &envelope.prompt {
            Some(p) => p.as_str(),
            None => v
                .get("prompt")
                .and_then(Json::as_str)
                .ok_or_else(|| "generate request needs a string \"prompt\"".to_string())?,
        };
        let id = v.get("id").and_then(Json::as_str).unwrap_or(fallback_id);
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => {
                s.as_u64().ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
            }
        };
        let guidance_scale = match v.get("guidance") {
            None => None,
            Some(g) => {
                Some(g.as_f64().ok_or_else(|| "\"guidance\" must be a number".to_string())? as f32)
            }
        };
        let steps = match v.get("steps") {
            None => None,
            Some(s) => {
                Some(s.as_u64().ok_or_else(|| "\"steps\" must be a positive integer".to_string())?
                    as usize)
            }
        };
        let deadline = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(Duration::from_millis(
                d.as_u64().ok_or_else(|| "\"deadline_ms\" must be milliseconds".to_string())?,
            )),
        };
        let tenant = match v.get("tenant") {
            None => None,
            Some(t) => Some(
                t.as_str().ok_or_else(|| "\"tenant\" must be a string".to_string())?.to_string(),
            ),
        };
        let stream = match v.get("stream") {
            None => false,
            Some(s) => s.as_bool().ok_or_else(|| "\"stream\" must be a boolean".to_string())?,
        };
        Ok(GenerateRequest {
            id: id.to_string(),
            prompt: prompt.to_string(),
            seed,
            guidance_scale: envelope.guidance.or(guidance_scale),
            steps: envelope.steps.or(steps),
            deadline,
            tenant,
            stream,
            task: envelope.payload,
        })
    }
}

/// Which admission gate shed an [`RejectReason::Overloaded`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScope {
    /// The submitting tenant's token bucket ran dry; other tenants are
    /// unaffected.
    Tenant,
    /// The whole fleet is past its load-shedding threshold (queue depth
    /// or p95 latency).
    Global,
}

/// Why the runtime refused to take (or finish) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity — explicit backpressure, the
    /// client should retry later or shed load.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// Admission control shed the request before it was queued. Retry
    /// after at least `retry_after_ms`, with jitter.
    Overloaded {
        /// Minimum milliseconds to wait before resubmitting.
        retry_after_ms: u64,
        /// Which gate shed it (tenant bucket vs. global load).
        scope: OverloadScope,
    },
    /// The runtime is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExceeded,
    /// The client cancelled the request before it finished.
    Cancelled,
    /// The serving worker disappeared before answering (worker panic).
    WorkerFailure,
    /// The worker hit a recoverable fault while serving this specific
    /// request (a panic caught mid-request, a non-finite sampler output,
    /// or a failed replica hydration); other requests were unaffected.
    WorkerError {
        /// Human-readable description of what failed.
        detail: String,
    },
}

impl RejectReason {
    /// Stable machine-readable tag used on the wire.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::Overloaded { .. } => "overloaded",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::Cancelled => "cancelled",
            RejectReason::WorkerFailure => "worker_failure",
            RejectReason::WorkerError { .. } => "worker_error",
        }
    }

    /// The server's backoff hint, when this rejection carries one. Wired
    /// onto error replies as `retry_after_ms`; see the module docs for
    /// the jittered-backoff guidance.
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RejectReason::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RejectReason::Overloaded { retry_after_ms, scope } => {
                let gate = match scope {
                    OverloadScope::Tenant => "tenant rate limit",
                    OverloadScope::Global => "global load shedding",
                };
                write!(f, "overloaded ({gate}); retry after {retry_after_ms}ms with jitter")
            }
            RejectReason::ShuttingDown => write!(f, "runtime is shutting down"),
            RejectReason::DeadlineExceeded => write!(f, "deadline expired while queued"),
            RejectReason::Cancelled => write!(f, "cancelled by the client"),
            RejectReason::WorkerFailure => write!(f, "serving worker failed"),
            RejectReason::WorkerError { detail } => write!(f, "worker error: {detail}"),
        }
    }
}

/// Per-stage wall-clock breakdown of one served request, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatency {
    /// Time spent waiting in the request queue.
    pub queue_us: u64,
    /// Condition-encode time (0 on a cache hit).
    pub encode_us: u64,
    /// This request's share context: the wall time of the coalesced
    /// sampler call it rode in.
    pub sample_us: u64,
    /// VAE decode + quantization time.
    pub decode_us: u64,
}

impl StageLatency {
    /// Total latency across stages.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.encode_us + self.sample_us + self.decode_us
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("queue", self.queue_us.into()),
            ("encode", self.encode_us.into()),
            ("sample", self.sample_us.into()),
            ("decode", self.decode_us.into()),
        ])
    }
}

/// A successfully served image.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedImage {
    /// Echo of the request id.
    pub id: String,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Channel-major (`[3, h, w]`) RGB bytes, one byte per channel value.
    pub rgb8: Vec<u8>,
    /// Per-stage latency breakdown.
    pub latency: StageLatency,
    /// How many requests the sampler call was coalesced over.
    pub batch_size: usize,
    /// Whether the condition embedding came from the cache.
    pub cache_hit: bool,
}

/// One intermediate-step latent preview streamed to a `stream:true`
/// request while it samples.
///
/// The latent is quantized to `u8` (`q = round(255 * (v - min) /
/// (max - min))`) so a preview line stays small; clients reconstruct an
/// approximate latent as `min + q / 255 * (max - min)`. Previews are
/// observational only — they never change the final image bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct LatentPreview {
    /// Echo of the request id.
    pub id: String,
    /// Zero-based index of the completed DDIM step.
    pub step: usize,
    /// Total steps the request will run if not cancelled.
    pub total_steps: usize,
    /// Latent shape `[c, h, w]`.
    pub shape: [usize; 3],
    /// Minimum latent value (dequantization offset).
    pub min: f32,
    /// Maximum latent value (dequantization scale anchor).
    pub max: f32,
    /// Row-major quantized latent bytes, `c*h*w` of them.
    pub latent_q8: Vec<u8>,
}

/// The reply to one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The request was served.
    Image(GeneratedImage),
    /// A streamed intermediate-step preview; zero or more precede the
    /// terminal reply of a `stream:true` request.
    Preview(LatentPreview),
    /// The request was rejected; the reason says at which stage.
    Rejected {
        /// Echo of the request id.
        id: String,
        /// The typed rejection.
        reason: RejectReason,
    },
}

impl ServeReply {
    /// Whether this reply ends its request's stream ([`Image`] and
    /// [`Rejected`] do; [`Preview`] lines are always followed by more).
    ///
    /// [`Image`]: ServeReply::Image
    /// [`Rejected`]: ServeReply::Rejected
    /// [`Preview`]: ServeReply::Preview
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ServeReply::Preview(_))
    }

    /// The NDJSON wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            ServeReply::Image(img) => Json::obj(vec![
                ("type", "image".into()),
                ("id", img.id.clone().into()),
                ("width", img.width.into()),
                ("height", img.height.into()),
                ("rgb8_b64", base64::encode(&img.rgb8).into()),
                ("batch_size", img.batch_size.into()),
                ("cache_hit", img.cache_hit.into()),
                ("latency_us", img.latency.to_json()),
            ]),
            ServeReply::Preview(p) => Json::obj(vec![
                ("type", "preview".into()),
                ("id", p.id.clone().into()),
                ("step", p.step.into()),
                ("steps", p.total_steps.into()),
                ("shape", Json::Arr(p.shape.iter().map(|&d| d.into()).collect())),
                ("min", f64::from(p.min).into()),
                ("max", f64::from(p.max).into()),
                ("latent_q8_b64", base64::encode(&p.latent_q8).into()),
            ]),
            ServeReply::Rejected { id, reason } => {
                let mut fields = vec![
                    ("type", "error".into()),
                    ("id", id.clone().into()),
                    ("reason", reason.tag().into()),
                    ("detail", reason.to_string().into()),
                ];
                if let Some(ms) = reason.retry_after_ms() {
                    fields.push(("retry_after_ms", ms.into()));
                }
                Json::obj(fields)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_request_parses_full_form() {
        let v = Json::parse(
            r#"{"type":"generate","id":"a","prompt":"a park at night","seed":9,"guidance":3.5,"steps":12,"deadline_ms":250}"#,
        )
        .unwrap();
        let r = GenerateRequest::from_json(&v, "fallback").unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.prompt, "a park at night");
        assert_eq!(r.seed, 9);
        assert_eq!(r.guidance_scale, Some(3.5));
        assert_eq!(r.steps, Some(12));
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn generate_request_defaults() {
        let v = Json::parse(r#"{"prompt":"x"}"#).unwrap();
        let r = GenerateRequest::from_json(&v, "req-3").unwrap();
        assert_eq!(r.id, "req-3");
        assert_eq!(r.seed, 0);
        assert_eq!(r.guidance_scale, None);
        // Fleet-era fields are backward compatible: absent means default.
        assert_eq!(r.tenant, None);
        assert_eq!(r.tenant_id(), "default");
        assert!(!r.stream);
    }

    #[test]
    fn generate_request_parses_tenant_and_stream() {
        let v = Json::parse(r#"{"prompt":"x","tenant":"team-a","stream":true}"#).unwrap();
        let r = GenerateRequest::from_json(&v, "f").unwrap();
        assert_eq!(r.tenant_id(), "team-a");
        assert!(r.stream);
        let bad = Json::parse(r#"{"prompt":"x","stream":"yes"}"#).unwrap();
        assert!(GenerateRequest::from_json(&bad, "f").is_err());
    }

    #[test]
    fn overloaded_reply_carries_retry_after_ms() {
        let reason = RejectReason::Overloaded { retry_after_ms: 40, scope: OverloadScope::Global };
        assert_eq!(reason.tag(), "overloaded");
        assert_eq!(reason.retry_after_ms(), Some(40));
        let wire =
            ServeReply::Rejected { id: "r".into(), reason: reason.clone() }.to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_u64), Some(40));
        // Rejections without a hint omit the field entirely.
        let plain = ServeReply::Rejected { id: "r".into(), reason: RejectReason::Cancelled }
            .to_json()
            .render();
        let v = Json::parse(&plain).unwrap();
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("cancelled"));
        assert!(v.get("retry_after_ms").is_none());
    }

    #[test]
    fn preview_wire_form_round_trips() {
        let reply = ServeReply::Preview(LatentPreview {
            id: "p".into(),
            step: 2,
            total_steps: 8,
            shape: [4, 2, 2],
            min: -1.5,
            max: 2.5,
            latent_q8: vec![0, 64, 128, 255],
        });
        assert!(!reply.is_terminal());
        let v = Json::parse(&reply.to_json().render()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("preview"));
        assert_eq!(v.get("step").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("steps").and_then(Json::as_u64), Some(8));
        assert_eq!(
            base64::decode(v.get("latent_q8_b64").and_then(Json::as_str).unwrap()).unwrap(),
            vec![0, 64, 128, 255]
        );
    }

    #[test]
    fn generate_request_requires_prompt() {
        let v = Json::parse(r#"{"seed":1}"#).unwrap();
        assert!(GenerateRequest::from_json(&v, "x").is_err());
    }

    #[test]
    fn old_format_lines_parse_identically_to_pre_task_schema() {
        // A pre-task wire line must produce exactly the request the old
        // parser did: every new field at its default, nothing re-read.
        let v = Json::parse(
            r#"{"type":"generate","id":"a","prompt":"a park","seed":9,"guidance":3.5,"steps":12,"deadline_ms":250,"tenant":"t","stream":true}"#,
        )
        .unwrap();
        let parsed = GenerateRequest::from_json(&v, "f").unwrap();
        let expected = GenerateRequest {
            id: "a".into(),
            prompt: "a park".into(),
            seed: 9,
            guidance_scale: Some(3.5),
            steps: Some(12),
            deadline: Some(Duration::from_millis(250)),
            tenant: Some("t".into()),
            stream: true,
            task: None,
        };
        assert_eq!(parsed, expected);
        // The missing-prompt error is also byte-identical to the old one.
        let missing = Json::parse(r#"{"seed":1}"#).unwrap();
        assert_eq!(
            GenerateRequest::from_json(&missing, "x").unwrap_err(),
            "generate request needs a string \"prompt\""
        );
        // An explicit `kind:"text"` task object is the same as no task.
        let text = Json::parse(r#"{"prompt":"a park","task":{"kind":"text"}}"#).unwrap();
        assert_eq!(GenerateRequest::from_json(&text, "f").unwrap().task, None);
    }

    #[test]
    fn image_payload_round_trips_and_validates_length() {
        let mut img = Image::new(3, 2);
        img.set_pixel(1, 0, [0.25, 0.5, 1.0]);
        let payload = ImagePayload::from_image(&img);
        assert_eq!(payload.rgb8.len(), 3 * 3 * 2);
        let wire = payload.to_json().render();
        let back = ImagePayload::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, payload);
        // Decoding then re-quantizing is lossless at byte granularity.
        assert_eq!(ImagePayload::from_image(&back.to_image()), payload);
        let short = Json::parse(r#"{"width":3,"height":2,"rgb8_b64":"AAAA"}"#).unwrap();
        assert!(ImagePayload::from_json(&short).unwrap_err().contains("rgb bytes"));
    }

    #[test]
    fn task_requests_round_trip_and_fold_overrides() {
        let image = ImagePayload::from_image(&Image::new(4, 4));
        let boxes =
            vec![Annotation { class: ObjectClass::Car, bbox: BBox::new(0.0, 0.0, 2.0, 2.0) }];
        let payload = TaskPayload::Inpaint { image: image.clone(), boxes: boxes.clone() };
        let wire = Json::obj(vec![
            ("prompt", "outer".into()),
            ("guidance", 2.0.into()),
            (
                "task",
                match payload.to_json() {
                    Json::Obj(mut fields) => {
                        fields.push(("prompt".into(), "inner".into()));
                        fields.push(("steps".into(), 6u64.into()));
                        Json::Obj(fields)
                    }
                    other => other,
                },
            ),
        ])
        .render();
        let r = GenerateRequest::from_json(&Json::parse(&wire).unwrap(), "f").unwrap();
        assert_eq!(r.task, Some(payload));
        assert_eq!(r.task_kind(), TaskKind::Inpaint);
        // task.prompt and task.steps win; guidance falls back to top level.
        assert_eq!(r.prompt, "inner");
        assert_eq!(r.steps, Some(6));
        assert_eq!(r.guidance_scale, Some(2.0));
        // A task-local prompt satisfies the prompt requirement alone.
        let solo = Json::obj(vec![(
            "task",
            match (TaskPayload::SuperRes { image: image.clone() }).to_json() {
                Json::Obj(mut fields) => {
                    fields.push(("prompt".into(), "a harbor".into()));
                    Json::Obj(fields)
                }
                other => other,
            },
        )])
        .render();
        let r = GenerateRequest::from_json(&Json::parse(&solo).unwrap(), "f").unwrap();
        assert_eq!(r.prompt, "a harbor");
        assert_eq!(r.task_kind(), TaskKind::SuperRes);
    }

    #[test]
    fn view_task_defaults_to_nadir_views_and_rejects_bad_kinds() {
        let image = ImagePayload::from_image(&Image::new(4, 4));
        let wire = Json::obj(vec![
            ("prompt", "p".into()),
            ("task", Json::obj(vec![("kind", "view".into()), ("image", image.to_json())])),
        ])
        .render();
        let r = GenerateRequest::from_json(&Json::parse(&wire).unwrap(), "f").unwrap();
        match r.task {
            Some(TaskPayload::View { source_view, target_view, .. }) => {
                assert_eq!(source_view, Viewpoint::default());
                assert_eq!(target_view, Viewpoint::default());
            }
            other => panic!("expected a view task, got {other:?}"),
        }
        let bad = Json::parse(r#"{"prompt":"p","task":{"kind":"zoom"}}"#).unwrap();
        assert!(GenerateRequest::from_json(&bad, "f").unwrap_err().contains("unknown task kind"));
        let bad_label = Json::obj(vec![
            ("prompt", "p".into()),
            (
                "task",
                Json::obj(vec![
                    ("kind", "inpaint".into()),
                    ("image", image.to_json()),
                    (
                        "boxes",
                        Json::Arr(vec![Json::obj(vec![
                            ("label", "spaceship".into()),
                            ("x0", 0.0.into()),
                            ("y0", 0.0.into()),
                            ("x1", 1.0.into()),
                            ("y1", 1.0.into()),
                        ])]),
                    ),
                ]),
            ),
        ])
        .render();
        let err = GenerateRequest::from_json(&Json::parse(&bad_label).unwrap(), "f").unwrap_err();
        assert!(err.contains("unknown box label"), "{err}");
    }

    #[test]
    fn reply_wire_form_round_trips() {
        let reply = ServeReply::Image(GeneratedImage {
            id: "r".into(),
            width: 2,
            height: 1,
            rgb8: vec![0, 128, 255, 1, 2, 3],
            latency: StageLatency { queue_us: 1, encode_us: 2, sample_us: 3, decode_us: 4 },
            batch_size: 4,
            cache_hit: true,
        });
        let wire = reply.to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("image"));
        assert_eq!(
            base64::decode(v.get("rgb8_b64").and_then(Json::as_str).unwrap()).unwrap(),
            vec![0, 128, 255, 1, 2, 3]
        );
        assert_eq!(
            v.get("latency_us").and_then(|l| l.get("sample")).and_then(Json::as_u64),
            Some(3)
        );
    }
}
