//! Serving protocol types: requests, replies, and typed rejections.
//!
//! # Backoff guidance
//!
//! Rejections that are worth retrying (`overloaded`, `queue_full`)
//! carry or imply a backoff. `overloaded` replies include a
//! `retry_after_ms` field: treat it as the *minimum* wait and add
//! jitter — e.g. sleep a uniform draw from `[hint, 2·hint]` — before
//! resubmitting. Retrying at exactly the hint from many clients at once
//! re-creates the synchronized spike that shed them in the first place.
//! `queue_full` has no server-side hint; use your own exponential
//! backoff with jitter, starting around one batch interval.

use crate::base64;
use crate::json::Json;
use std::fmt;
use std::time::Duration;

/// One text-to-aerial-image generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: String,
    /// The target description `G'` steering generation.
    pub prompt: String,
    /// Seed driving this request's private noise stream. The same seed
    /// yields byte-identical output regardless of how the request was
    /// batched.
    pub seed: u64,
    /// Classifier-free guidance scale override (default: the runtime's).
    pub guidance_scale: Option<f32>,
    /// DDIM step count override (default: the runtime's).
    pub steps: Option<usize>,
    /// Deadline measured from submission; a request still queued when it
    /// expires is rejected instead of sampled.
    pub deadline: Option<Duration>,
    /// Tenant the request is billed against for per-tenant admission
    /// control. Absent means the shared default tenant.
    pub tenant: Option<String>,
    /// When set, the server streams `preview` lines (quantized
    /// intermediate latents) while this request samples, before the
    /// final `image` line.
    pub stream: bool,
}

impl GenerateRequest {
    /// A request with defaults for everything but id, prompt and seed.
    #[must_use]
    pub fn new(id: impl Into<String>, prompt: impl Into<String>, seed: u64) -> Self {
        GenerateRequest {
            id: id.into(),
            prompt: prompt.into(),
            seed,
            guidance_scale: None,
            steps: None,
            deadline: None,
            tenant: None,
            stream: false,
        }
    }

    /// The tenant this request bills against (the shared `"default"`
    /// tenant when none was given).
    #[must_use]
    pub fn tenant_id(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }

    /// Parses the NDJSON form:
    /// `{"type":"generate","id":…,"prompt":…,"seed":…,"guidance":…,"steps":…,"deadline_ms":…,"tenant":…,"stream":…}`.
    /// Only `prompt` is required; `id` defaults to `fallback_id`. The
    /// `tenant` and `stream` fields are recent additions — absent fields
    /// keep their defaults, so pre-fleet clients parse unchanged.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field.
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<Self, String> {
        let prompt = v
            .get("prompt")
            .and_then(Json::as_str)
            .ok_or_else(|| "generate request needs a string \"prompt\"".to_string())?;
        let id = v.get("id").and_then(Json::as_str).unwrap_or(fallback_id);
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => {
                s.as_u64().ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
            }
        };
        let guidance_scale = match v.get("guidance") {
            None => None,
            Some(g) => {
                Some(g.as_f64().ok_or_else(|| "\"guidance\" must be a number".to_string())? as f32)
            }
        };
        let steps = match v.get("steps") {
            None => None,
            Some(s) => {
                Some(s.as_u64().ok_or_else(|| "\"steps\" must be a positive integer".to_string())?
                    as usize)
            }
        };
        let deadline = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(Duration::from_millis(
                d.as_u64().ok_or_else(|| "\"deadline_ms\" must be milliseconds".to_string())?,
            )),
        };
        let tenant = match v.get("tenant") {
            None => None,
            Some(t) => Some(
                t.as_str().ok_or_else(|| "\"tenant\" must be a string".to_string())?.to_string(),
            ),
        };
        let stream = match v.get("stream") {
            None => false,
            Some(s) => s.as_bool().ok_or_else(|| "\"stream\" must be a boolean".to_string())?,
        };
        Ok(GenerateRequest {
            id: id.to_string(),
            prompt: prompt.to_string(),
            seed,
            guidance_scale,
            steps,
            deadline,
            tenant,
            stream,
        })
    }
}

/// Which admission gate shed an [`RejectReason::Overloaded`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScope {
    /// The submitting tenant's token bucket ran dry; other tenants are
    /// unaffected.
    Tenant,
    /// The whole fleet is past its load-shedding threshold (queue depth
    /// or p95 latency).
    Global,
}

/// Why the runtime refused to take (or finish) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity — explicit backpressure, the
    /// client should retry later or shed load.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// Admission control shed the request before it was queued. Retry
    /// after at least `retry_after_ms`, with jitter.
    Overloaded {
        /// Minimum milliseconds to wait before resubmitting.
        retry_after_ms: u64,
        /// Which gate shed it (tenant bucket vs. global load).
        scope: OverloadScope,
    },
    /// The runtime is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExceeded,
    /// The client cancelled the request before it finished.
    Cancelled,
    /// The serving worker disappeared before answering (worker panic).
    WorkerFailure,
    /// The worker hit a recoverable fault while serving this specific
    /// request (a panic caught mid-request, a non-finite sampler output,
    /// or a failed replica hydration); other requests were unaffected.
    WorkerError {
        /// Human-readable description of what failed.
        detail: String,
    },
}

impl RejectReason {
    /// Stable machine-readable tag used on the wire.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::Overloaded { .. } => "overloaded",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::Cancelled => "cancelled",
            RejectReason::WorkerFailure => "worker_failure",
            RejectReason::WorkerError { .. } => "worker_error",
        }
    }

    /// The server's backoff hint, when this rejection carries one. Wired
    /// onto error replies as `retry_after_ms`; see the module docs for
    /// the jittered-backoff guidance.
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RejectReason::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RejectReason::Overloaded { retry_after_ms, scope } => {
                let gate = match scope {
                    OverloadScope::Tenant => "tenant rate limit",
                    OverloadScope::Global => "global load shedding",
                };
                write!(f, "overloaded ({gate}); retry after {retry_after_ms}ms with jitter")
            }
            RejectReason::ShuttingDown => write!(f, "runtime is shutting down"),
            RejectReason::DeadlineExceeded => write!(f, "deadline expired while queued"),
            RejectReason::Cancelled => write!(f, "cancelled by the client"),
            RejectReason::WorkerFailure => write!(f, "serving worker failed"),
            RejectReason::WorkerError { detail } => write!(f, "worker error: {detail}"),
        }
    }
}

/// Per-stage wall-clock breakdown of one served request, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatency {
    /// Time spent waiting in the request queue.
    pub queue_us: u64,
    /// Condition-encode time (0 on a cache hit).
    pub encode_us: u64,
    /// This request's share context: the wall time of the coalesced
    /// sampler call it rode in.
    pub sample_us: u64,
    /// VAE decode + quantization time.
    pub decode_us: u64,
}

impl StageLatency {
    /// Total latency across stages.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.encode_us + self.sample_us + self.decode_us
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("queue", self.queue_us.into()),
            ("encode", self.encode_us.into()),
            ("sample", self.sample_us.into()),
            ("decode", self.decode_us.into()),
        ])
    }
}

/// A successfully served image.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedImage {
    /// Echo of the request id.
    pub id: String,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Channel-major (`[3, h, w]`) RGB bytes, one byte per channel value.
    pub rgb8: Vec<u8>,
    /// Per-stage latency breakdown.
    pub latency: StageLatency,
    /// How many requests the sampler call was coalesced over.
    pub batch_size: usize,
    /// Whether the condition embedding came from the cache.
    pub cache_hit: bool,
}

/// One intermediate-step latent preview streamed to a `stream:true`
/// request while it samples.
///
/// The latent is quantized to `u8` (`q = round(255 * (v - min) /
/// (max - min))`) so a preview line stays small; clients reconstruct an
/// approximate latent as `min + q / 255 * (max - min)`. Previews are
/// observational only — they never change the final image bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct LatentPreview {
    /// Echo of the request id.
    pub id: String,
    /// Zero-based index of the completed DDIM step.
    pub step: usize,
    /// Total steps the request will run if not cancelled.
    pub total_steps: usize,
    /// Latent shape `[c, h, w]`.
    pub shape: [usize; 3],
    /// Minimum latent value (dequantization offset).
    pub min: f32,
    /// Maximum latent value (dequantization scale anchor).
    pub max: f32,
    /// Row-major quantized latent bytes, `c*h*w` of them.
    pub latent_q8: Vec<u8>,
}

/// The reply to one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The request was served.
    Image(GeneratedImage),
    /// A streamed intermediate-step preview; zero or more precede the
    /// terminal reply of a `stream:true` request.
    Preview(LatentPreview),
    /// The request was rejected; the reason says at which stage.
    Rejected {
        /// Echo of the request id.
        id: String,
        /// The typed rejection.
        reason: RejectReason,
    },
}

impl ServeReply {
    /// Whether this reply ends its request's stream ([`Image`] and
    /// [`Rejected`] do; [`Preview`] lines are always followed by more).
    ///
    /// [`Image`]: ServeReply::Image
    /// [`Rejected`]: ServeReply::Rejected
    /// [`Preview`]: ServeReply::Preview
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ServeReply::Preview(_))
    }

    /// The NDJSON wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            ServeReply::Image(img) => Json::obj(vec![
                ("type", "image".into()),
                ("id", img.id.clone().into()),
                ("width", img.width.into()),
                ("height", img.height.into()),
                ("rgb8_b64", base64::encode(&img.rgb8).into()),
                ("batch_size", img.batch_size.into()),
                ("cache_hit", img.cache_hit.into()),
                ("latency_us", img.latency.to_json()),
            ]),
            ServeReply::Preview(p) => Json::obj(vec![
                ("type", "preview".into()),
                ("id", p.id.clone().into()),
                ("step", p.step.into()),
                ("steps", p.total_steps.into()),
                ("shape", Json::Arr(p.shape.iter().map(|&d| d.into()).collect())),
                ("min", f64::from(p.min).into()),
                ("max", f64::from(p.max).into()),
                ("latent_q8_b64", base64::encode(&p.latent_q8).into()),
            ]),
            ServeReply::Rejected { id, reason } => {
                let mut fields = vec![
                    ("type", "error".into()),
                    ("id", id.clone().into()),
                    ("reason", reason.tag().into()),
                    ("detail", reason.to_string().into()),
                ];
                if let Some(ms) = reason.retry_after_ms() {
                    fields.push(("retry_after_ms", ms.into()));
                }
                Json::obj(fields)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_request_parses_full_form() {
        let v = Json::parse(
            r#"{"type":"generate","id":"a","prompt":"a park at night","seed":9,"guidance":3.5,"steps":12,"deadline_ms":250}"#,
        )
        .unwrap();
        let r = GenerateRequest::from_json(&v, "fallback").unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.prompt, "a park at night");
        assert_eq!(r.seed, 9);
        assert_eq!(r.guidance_scale, Some(3.5));
        assert_eq!(r.steps, Some(12));
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn generate_request_defaults() {
        let v = Json::parse(r#"{"prompt":"x"}"#).unwrap();
        let r = GenerateRequest::from_json(&v, "req-3").unwrap();
        assert_eq!(r.id, "req-3");
        assert_eq!(r.seed, 0);
        assert_eq!(r.guidance_scale, None);
        // Fleet-era fields are backward compatible: absent means default.
        assert_eq!(r.tenant, None);
        assert_eq!(r.tenant_id(), "default");
        assert!(!r.stream);
    }

    #[test]
    fn generate_request_parses_tenant_and_stream() {
        let v = Json::parse(r#"{"prompt":"x","tenant":"team-a","stream":true}"#).unwrap();
        let r = GenerateRequest::from_json(&v, "f").unwrap();
        assert_eq!(r.tenant_id(), "team-a");
        assert!(r.stream);
        let bad = Json::parse(r#"{"prompt":"x","stream":"yes"}"#).unwrap();
        assert!(GenerateRequest::from_json(&bad, "f").is_err());
    }

    #[test]
    fn overloaded_reply_carries_retry_after_ms() {
        let reason = RejectReason::Overloaded { retry_after_ms: 40, scope: OverloadScope::Global };
        assert_eq!(reason.tag(), "overloaded");
        assert_eq!(reason.retry_after_ms(), Some(40));
        let wire =
            ServeReply::Rejected { id: "r".into(), reason: reason.clone() }.to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_u64), Some(40));
        // Rejections without a hint omit the field entirely.
        let plain = ServeReply::Rejected { id: "r".into(), reason: RejectReason::Cancelled }
            .to_json()
            .render();
        let v = Json::parse(&plain).unwrap();
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("cancelled"));
        assert!(v.get("retry_after_ms").is_none());
    }

    #[test]
    fn preview_wire_form_round_trips() {
        let reply = ServeReply::Preview(LatentPreview {
            id: "p".into(),
            step: 2,
            total_steps: 8,
            shape: [4, 2, 2],
            min: -1.5,
            max: 2.5,
            latent_q8: vec![0, 64, 128, 255],
        });
        assert!(!reply.is_terminal());
        let v = Json::parse(&reply.to_json().render()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("preview"));
        assert_eq!(v.get("step").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("steps").and_then(Json::as_u64), Some(8));
        assert_eq!(
            base64::decode(v.get("latent_q8_b64").and_then(Json::as_str).unwrap()).unwrap(),
            vec![0, 64, 128, 255]
        );
    }

    #[test]
    fn generate_request_requires_prompt() {
        let v = Json::parse(r#"{"seed":1}"#).unwrap();
        assert!(GenerateRequest::from_json(&v, "x").is_err());
    }

    #[test]
    fn reply_wire_form_round_trips() {
        let reply = ServeReply::Image(GeneratedImage {
            id: "r".into(),
            width: 2,
            height: 1,
            rgb8: vec![0, 128, 255, 1, 2, 3],
            latency: StageLatency { queue_us: 1, encode_us: 2, sample_us: 3, decode_us: 4 },
            batch_size: 4,
            cache_hit: true,
        });
        let wire = reply.to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("image"));
        assert_eq!(
            base64::decode(v.get("rgb8_b64").and_then(Json::as_str).unwrap()).unwrap(),
            vec![0, 128, 255, 1, 2, 3]
        );
        assert_eq!(
            v.get("latency_us").and_then(|l| l.get("sample")).and_then(Json::as_u64),
            Some(3)
        );
    }
}
