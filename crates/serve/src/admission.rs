//! Admission control: per-tenant token buckets plus a global
//! load-shedding gate.
//!
//! Both layers answer at submission time, before a request ever touches
//! a queue, with a typed [`RejectReason::Overloaded`] carrying a
//! `retry_after_ms` hint:
//!
//! - the **tenant** layer is a classic token bucket per tenant id
//!   (`rate` tokens/second, `burst` capacity), so one chatty client
//!   cannot starve the rest;
//! - the **global** layer sheds when the live `aero_obs` signals say the
//!   fleet is past its knee: total queue depth at or above
//!   `shed_queue_depth`, or served p95 end-to-end latency at or above
//!   `shed_p95_us`.
//!
//! Clients should treat `retry_after_ms` as a *base* and retry with
//! jitter (e.g. uniform in `[hint, 2·hint]`); synchronized retries from
//! many shed clients just re-create the spike that shed them.

use crate::request::{OverloadScope, RejectReason};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Admission-control knobs. A zero disables the corresponding gate, so
/// the default configuration admits everything — admission is strictly
/// opt-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained per-tenant rate, requests/second. `0.0` disables the
    /// per-tenant gate.
    pub tenant_rate: f64,
    /// Token-bucket capacity: the burst a tenant may spend above its
    /// sustained rate.
    pub tenant_burst: f64,
    /// Shed new work while total queued requests (across all replica
    /// groups) is at or above this. `0` disables the depth gate.
    pub shed_queue_depth: usize,
    /// Shed new work while the served p95 end-to-end latency is at or
    /// above this many microseconds. `0` disables the latency gate.
    pub shed_p95_us: u64,
    /// Base `retry_after_ms` hint on global sheds (tenant throttles
    /// compute their own hint from the bucket deficit).
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_rate: 0.0,
            tenant_burst: 8.0,
            shed_queue_depth: 0,
            shed_p95_us: 0,
            retry_after_ms: 25,
        }
    }
}

/// One tenant's token bucket. Time is an explicit parameter (seconds on
/// a monotonic axis) so refill arithmetic is exactly testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    /// Tokens/second refill rate.
    rate: f64,
    /// Maximum tokens the bucket holds.
    burst: f64,
    /// Tokens available as of `last`.
    tokens: f64,
    /// Monotonic timestamp (seconds) of the last refill.
    last: f64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/second up to `burst`.
    #[must_use]
    pub fn new(rate: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket { rate: rate.max(0.0), burst, tokens: burst, last: 0.0 }
    }

    /// Takes one token at monotonic time `now_s`.
    ///
    /// # Errors
    ///
    /// When the bucket is empty, returns the milliseconds until one full
    /// token will have refilled — the `retry_after_ms` hint.
    pub fn try_take(&mut self, now_s: f64) -> Result<(), u64> {
        let elapsed = (now_s - self.last).max(0.0);
        self.last = now_s;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        if self.rate <= 0.0 {
            // Nothing ever refills; the largest honest hint we can give.
            return Err(u64::MAX);
        }
        let deficit = 1.0 - self.tokens;
        let ms = (deficit / self.rate * 1000.0).ceil();
        Err(if ms.is_finite() && ms >= 0.0 { ms as u64 } else { u64::MAX })
    }

    /// Tokens currently available (after a refill to `now_s`).
    #[must_use]
    pub fn available(&self, now_s: f64) -> f64 {
        let elapsed = (now_s - self.last).max(0.0);
        (self.tokens + elapsed * self.rate).min(self.burst)
    }
}

/// The submission-time gatekeeper: owns the per-tenant buckets and
/// evaluates the global shed signals handed in by the runtime.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    epoch: Instant,
}

impl AdmissionController {
    /// A controller with no tenants seen yet.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config, buckets: Mutex::new(HashMap::new()), epoch: Instant::now() }
    }

    /// The configuration this controller enforces.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides admission for one request. `queue_depth` is the total
    /// across all replica groups; `p95_us` is the served end-to-end p95
    /// (0 until enough requests completed).
    ///
    /// # Errors
    ///
    /// [`RejectReason::Overloaded`] with a `retry_after_ms` hint when a
    /// gate sheds the request.
    ///
    /// # Panics
    ///
    /// Panics if the bucket map mutex was poisoned.
    pub fn admit(&self, tenant: &str, queue_depth: usize, p95_us: u64) -> Result<(), RejectReason> {
        let now_s = self.epoch.elapsed().as_secs_f64();
        self.admit_at(tenant, queue_depth, p95_us, now_s)
    }

    /// [`admit`](AdmissionController::admit) at an explicit monotonic
    /// time — the deterministic entry point tests drive directly.
    ///
    /// # Errors
    ///
    /// As [`admit`](AdmissionController::admit).
    ///
    /// # Panics
    ///
    /// Panics if the bucket map mutex was poisoned.
    pub fn admit_at(
        &self,
        tenant: &str,
        queue_depth: usize,
        p95_us: u64,
        now_s: f64,
    ) -> Result<(), RejectReason> {
        if self.config.shed_queue_depth > 0 && queue_depth >= self.config.shed_queue_depth {
            return Err(RejectReason::Overloaded {
                retry_after_ms: self.config.retry_after_ms.max(1),
                scope: OverloadScope::Global,
            });
        }
        if self.config.shed_p95_us > 0 && p95_us >= self.config.shed_p95_us {
            return Err(RejectReason::Overloaded {
                retry_after_ms: self.config.retry_after_ms.max(1),
                scope: OverloadScope::Global,
            });
        }
        if self.config.tenant_rate > 0.0 {
            let mut buckets = self.buckets.lock().expect("admission bucket lock");
            let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| {
                TokenBucket::new(self.config.tenant_rate, self.config.tenant_burst)
            });
            if let Err(retry_after_ms) = bucket.try_take(now_s) {
                return Err(RejectReason::Overloaded {
                    retry_after_ms: retry_after_ms.max(1),
                    scope: OverloadScope::Tenant,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overload_scope(result: Result<(), RejectReason>) -> Option<OverloadScope> {
        match result {
            Err(RejectReason::Overloaded { scope, .. }) => Some(scope),
            _ => None,
        }
    }

    #[test]
    fn bucket_burst_then_throttle_then_refill() {
        let mut b = TokenBucket::new(10.0, 2.0);
        assert_eq!(b.try_take(0.0), Ok(()));
        assert_eq!(b.try_take(0.0), Ok(()));
        let hint = b.try_take(0.0).unwrap_err();
        // Empty bucket at 10 tokens/s: one token is 100ms away.
        assert_eq!(hint, 100);
        // 150ms later there is a token again.
        assert_eq!(b.try_take(0.15), Ok(()));
        assert!(b.try_take(0.15).is_err());
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(100.0, 3.0);
        // A long idle period must cap at the burst, not accumulate.
        assert!((b.available(10.0) - 3.0).abs() < 1e-9);
        for _ in 0..3 {
            assert_eq!(b.try_take(10.0), Ok(()));
        }
        assert!(b.try_take(10.0).is_err());
    }

    #[test]
    fn zero_rate_bucket_spends_its_burst_then_blocks_forever() {
        let mut b = TokenBucket::new(0.0, 2.0);
        assert_eq!(b.try_take(0.0), Ok(()));
        assert_eq!(b.try_take(0.0), Ok(()));
        assert_eq!(b.try_take(1e9), Err(u64::MAX));
    }

    #[test]
    fn default_config_admits_everything() {
        let ctrl = AdmissionController::new(AdmissionConfig::default());
        for i in 0..100 {
            assert_eq!(ctrl.admit_at("t", 1_000, 1_000_000, f64::from(i)), Ok(()));
        }
    }

    #[test]
    fn depth_gate_sheds_globally_with_hint() {
        let config = AdmissionConfig {
            shed_queue_depth: 4,
            retry_after_ms: 30,
            ..AdmissionConfig::default()
        };
        let ctrl = AdmissionController::new(config);
        assert_eq!(ctrl.admit_at("t", 3, 0, 0.0), Ok(()));
        let shed = ctrl.admit_at("t", 4, 0, 0.0);
        assert_eq!(overload_scope(shed.clone()), Some(OverloadScope::Global));
        match shed {
            Err(RejectReason::Overloaded { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 30),
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    #[test]
    fn p95_gate_sheds_globally() {
        let config = AdmissionConfig { shed_p95_us: 500, ..AdmissionConfig::default() };
        let ctrl = AdmissionController::new(config);
        assert_eq!(ctrl.admit_at("t", 0, 499, 0.0), Ok(()));
        assert_eq!(overload_scope(ctrl.admit_at("t", 0, 500, 0.0)), Some(OverloadScope::Global));
    }

    #[test]
    fn tenants_throttle_independently() {
        let config =
            AdmissionConfig { tenant_rate: 1.0, tenant_burst: 2.0, ..AdmissionConfig::default() };
        let ctrl = AdmissionController::new(config);
        assert_eq!(ctrl.admit_at("a", 0, 0, 0.0), Ok(()));
        assert_eq!(ctrl.admit_at("a", 0, 0, 0.0), Ok(()));
        assert_eq!(overload_scope(ctrl.admit_at("a", 0, 0, 0.0)), Some(OverloadScope::Tenant));
        // Tenant b still has a full bucket.
        assert_eq!(ctrl.admit_at("b", 0, 0, 0.0), Ok(()));
        // And tenant a recovers once a token refills.
        assert_eq!(ctrl.admit_at("a", 0, 0, 1.5), Ok(()));
    }

    #[test]
    fn tenant_hint_reflects_the_bucket_deficit() {
        let config =
            AdmissionConfig { tenant_rate: 2.0, tenant_burst: 1.0, ..AdmissionConfig::default() };
        let ctrl = AdmissionController::new(config);
        assert_eq!(ctrl.admit_at("a", 0, 0, 0.0), Ok(()));
        match ctrl.admit_at("a", 0, 0, 0.0) {
            Err(RejectReason::Overloaded { retry_after_ms, scope }) => {
                assert_eq!(scope, OverloadScope::Tenant);
                // Empty bucket at 2 tokens/s: a full token is 500ms out.
                assert_eq!(retry_after_ms, 500);
            }
            other => panic!("expected tenant throttle, got {other:?}"),
        }
    }
}
