//! A minimal JSON value, parser, and writer.
//!
//! The build environment vendors `serde` as a no-op shim (no data format is
//! available offline), so the serving protocol carries its own ~200-line
//! JSON implementation: enough for newline-delimited request/response
//! objects — nested containers, escapes, and numbers — with stable key
//! order on output.

use std::fmt;

/// A JSON value. Object keys keep insertion order so rendered responses
/// are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { at: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            // hex4 leaves pos one past the digits; undo the
                            // unconditional advance below
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"type":"generate","seed":7,"opts":{"g":7.5,"tags":["a","b"]},"x":null,"ok":true} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("generate"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("opts").and_then(|o| o.get("g")).and_then(Json::as_f64), Some(7.5));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj(vec![
            ("id", "r-1 \"quoted\"\n".into()),
            ("n", 42u64.into()),
            ("f", 1.5f64.into()),
            ("arr", Json::Arr(vec![Json::Null, true.into()])),
            ("nested", Json::obj(vec![("k", "v".into())])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""tab\t nl\n unié pair😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t nl\n unié pair😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(Json::parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None);
    }
}
