//! The bounded, deadline-aware request queue feeding the worker pool.
//!
//! Backpressure is explicit: a full queue rejects new work with a typed
//! [`RejectReason::QueueFull`] instead of blocking the submitter forever,
//! so callers can shed load or retry with jitter. Requests that sit past
//! their deadline — or whose client cancelled them — are swept with a
//! typed rejection on every push, every pop, and on the supervisor's
//! periodic [`RequestQueue::sweep`], so a client never hangs on a reply
//! that will not come even when no worker is popping.

use crate::request::{GenerateRequest, RejectReason, ServeReply};
use aero_diffusion::CancelToken;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queued request plus its bookkeeping.
#[derive(Debug)]
pub struct Pending {
    /// The request itself.
    pub request: GenerateRequest,
    /// Runtime-assigned submission ordinal (0, 1, 2, …). Stable across
    /// requeues, so the fault-injection harness can target "the Nth
    /// request submitted" deterministically.
    pub ordinal: u64,
    /// When it entered the queue (queue-wait accounting).
    pub enqueued: Instant,
    /// Absolute expiry, from the request's relative deadline.
    pub deadline: Option<Instant>,
    /// The client-facing cancel flag: set through the response handle,
    /// observed by queue sweeps and between sampler steps.
    pub cancel: CancelToken,
    /// Where the reply goes.
    pub responder: Sender<ServeReply>,
}

impl Pending {
    /// Sends a typed rejection to the waiting client (best-effort: a
    /// client that dropped its handle is simply gone).
    pub fn reject(self, reason: RejectReason) {
        let _ = self.responder.send(ServeReply::Rejected { id: self.request.id.clone(), reason });
    }
}

#[derive(Debug)]
struct State {
    items: VecDeque<Pending>,
    shutting_down: bool,
}

/// The bounded MPMC queue between submitters and workers.
#[derive(Debug)]
pub struct RequestQueue {
    state: Mutex<State>,
    available: Condvar,
    capacity: usize,
}

impl RequestQueue {
    /// Creates a queue admitting at most `capacity` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            state: Mutex::new(State { items: VecDeque::new(), shutting_down: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently waiting.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a request, or rejects it with backpressure.
    ///
    /// # Errors
    ///
    /// [`RejectReason::ShuttingDown`] once a drain began,
    /// [`RejectReason::QueueFull`] at capacity.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn push(&self, pending: Pending) -> Result<(), RejectReason> {
        let mut state = self.state.lock().expect("queue lock");
        if state.shutting_down {
            return Err(RejectReason::ShuttingDown);
        }
        if state.items.len() >= self.capacity {
            // Dead entries should not cause live rejections: sweep first,
            // and only reject if the queue is still genuinely full.
            sweep_items(&mut state.items);
            if state.items.len() >= self.capacity {
                return Err(RejectReason::QueueFull { capacity: self.capacity });
            }
        }
        state.items.push_back(pending);
        drop(state);
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until work is available, then returns up to `max_batch`
    /// requests. When fewer than `max_batch` are waiting, lingers up to
    /// `coalesce_wait` for stragglers to batch with (dynamic batching);
    /// a drain skips the linger. Expired and cancelled requests are
    /// rejected here, not returned. Returns `None` when shutting down
    /// with an empty queue — the worker's signal to exit.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn pop_batch(&self, max_batch: usize, coalesce_wait: Duration) -> Option<Vec<Pending>> {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.pop_batch_watch(max_batch, coalesce_wait, &NEVER)
    }

    /// [`pop_batch`](RequestQueue::pop_batch) that additionally returns
    /// `None` as soon as `abort` reads true — the replica-kill path: a
    /// dying group's peers must stop popping *without* draining the
    /// queue or marking it shut down, so the supervisor can re-route
    /// what is left and respawn against the same queue. Pair an `abort`
    /// store with [`wake_all`](RequestQueue::wake_all) so blocked
    /// workers notice.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn pop_batch_watch(
        &self,
        max_batch: usize,
        coalesce_wait: Duration,
        abort: &AtomicBool,
    ) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if abort.load(Ordering::SeqCst) {
                return None;
            }
            sweep_items(&mut state.items);
            if state.items.is_empty() {
                if state.shutting_down {
                    return None;
                }
                let (s, _) = self
                    .available
                    .wait_timeout(state, Duration::from_millis(5))
                    .expect("queue lock");
                state = s;
                continue;
            }
            if state.items.len() < max_batch && !state.shutting_down {
                let coalesce_until = Instant::now() + coalesce_wait;
                while state.items.len() < max_batch
                    && !state.shutting_down
                    && !abort.load(Ordering::SeqCst)
                {
                    let left = coalesce_until.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (s, _) = self.available.wait_timeout(state, left).expect("queue lock");
                    state = s;
                }
                if abort.load(Ordering::SeqCst) {
                    return None;
                }
                sweep_items(&mut state.items);
                if state.items.is_empty() {
                    continue;
                }
            }
            let n = state.items.len().min(max_batch);
            return Some(state.items.drain(..n).collect());
        }
    }

    /// Wakes every thread blocked in a pop. Used together with an abort
    /// flag or after flipping external state the poppers should observe.
    pub fn wake_all(&self) {
        self.available.notify_all();
    }

    /// Rejects every expired or cancelled entry in place, with a typed
    /// reply. Workers sweep implicitly on push and pop; the supervisor
    /// calls this on a timer so clients get their rejection even while
    /// every worker is busy inside a long sampler call.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn sweep(&self) {
        sweep_items(&mut self.state.lock().expect("queue lock").items);
    }

    /// Returns already-admitted requests to the *front* of the queue, in
    /// order. Used by a dying worker to hand its unserved batch back so a
    /// replacement can finish it: these requests were admitted once, so
    /// capacity and shutdown checks do not apply — dropping them here
    /// would silently lose replies.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn requeue(&self, batch: Vec<Pending>) {
        let mut state = self.state.lock().expect("queue lock");
        for pending in batch.into_iter().rev() {
            state.items.push_front(pending);
        }
        drop(state);
        self.available.notify_all();
    }

    /// Removes and returns every waiting request. Used when the last
    /// live worker is gone and nobody will ever pop again — the caller
    /// rejects each request with a typed error instead of hanging the
    /// clients forever.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn drain_all(&self) -> Vec<Pending> {
        let mut state = self.state.lock().expect("queue lock");
        state.items.drain(..).collect()
    }

    /// Starts a drain: new pushes are rejected, workers keep popping until
    /// the queue is empty and then see `None`.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking worker.
    pub fn begin_shutdown(&self) {
        self.state.lock().expect("queue lock").shutting_down = true;
        self.available.notify_all();
    }
}

/// Rejects every entry whose deadline has passed or whose client
/// cancelled it, in place.
fn sweep_items(items: &mut VecDeque<Pending>) {
    let now = Instant::now();
    let mut i = 0;
    while i < items.len() {
        let reason = match items.get(i) {
            Some(p) if p.deadline.is_some_and(|d| d <= now) => Some(RejectReason::DeadlineExceeded),
            Some(p) if p.cancel.is_cancelled() => Some(RejectReason::Cancelled),
            _ => None,
        };
        match reason {
            Some(reason) => {
                if let Some(p) = items.remove(i) {
                    p.reject(reason);
                }
            }
            None => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pending(id: &str, deadline: Option<Duration>) -> (Pending, mpsc::Receiver<ServeReply>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            Pending {
                request: GenerateRequest::new(id, "a prompt", 0),
                ordinal: 0,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                cancel: CancelToken::new(),
                responder: tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_with_typed_error() {
        let q = RequestQueue::new(2);
        let (a, _ra) = pending("a", None);
        let (b, _rb) = pending("b", None);
        let (c, _rc) = pending("c", None);
        q.push(a).unwrap();
        q.push(b).unwrap();
        assert_eq!(q.push(c), Err(RejectReason::QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_old() {
        let q = RequestQueue::new(4);
        let (a, _ra) = pending("a", None);
        q.push(a).unwrap();
        q.begin_shutdown();
        let (b, _rb) = pending("b", None);
        assert_eq!(q.push(b), Err(RejectReason::ShuttingDown));
        // draining: the queued request is still delivered…
        let batch = q.pop_batch(8, Duration::from_millis(50)).expect("drain batch");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.id, "a");
        // …and an empty drained queue signals exit.
        assert!(q.pop_batch(8, Duration::from_millis(50)).is_none());
    }

    #[test]
    fn pop_coalesces_up_to_max_batch() {
        let q = RequestQueue::new(8);
        for i in 0..5 {
            let (p, _r) = pending(&format!("r{i}"), None);
            std::mem::forget(_r); // keep responders alive for the test
            q.push(p).unwrap();
        }
        q.begin_shutdown(); // skip the coalesce linger
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 3);
        let rest = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn expired_requests_are_rejected_not_served() {
        let q = RequestQueue::new(4);
        let (dead, dead_rx) = pending("dead", Some(Duration::ZERO));
        let (live, live_rx) = pending("live", None);
        q.push(dead).unwrap();
        q.push(live).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        q.begin_shutdown();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.id, "live");
        drop(live_rx);
        match dead_rx.recv().expect("rejection must be delivered") {
            ServeReply::Rejected { id, reason } => {
                assert_eq!(id, "dead");
                assert_eq!(reason, RejectReason::DeadlineExceeded);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn sweep_rejects_expired_entries_with_no_worker_popping() {
        let q = RequestQueue::new(4);
        let (dead, dead_rx) = pending("dead", Some(Duration::ZERO));
        let (live, _live_rx) = pending("live", None);
        q.push(dead).unwrap();
        q.push(live).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // Nobody pops; the supervisor's timer sweep alone must deliver
        // the typed rejection so the client never hangs.
        q.sweep();
        assert_eq!(q.len(), 1);
        match dead_rx.recv().expect("rejection must be delivered") {
            ServeReply::Rejected { id, reason } => {
                assert_eq!(id, "dead");
                assert_eq!(reason, RejectReason::DeadlineExceeded);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_entry_is_swept_with_typed_reply() {
        let q = RequestQueue::new(4);
        let (gone, gone_rx) = pending("gone", None);
        let token = gone.cancel.clone();
        let (live, _live_rx) = pending("live", None);
        q.push(gone).unwrap();
        q.push(live).unwrap();
        token.cancel();
        q.begin_shutdown();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.id, "live");
        match gone_rx.recv().expect("rejection must be delivered") {
            ServeReply::Rejected { id, reason } => {
                assert_eq!(id, "gone");
                assert_eq!(reason, RejectReason::Cancelled);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn push_at_capacity_sweeps_dead_entries_before_rejecting() {
        let q = RequestQueue::new(2);
        let (dead, _dead_rx) = pending("dead", None);
        let token = dead.cancel.clone();
        let (a, _ra) = pending("a", None);
        q.push(dead).unwrap();
        q.push(a).unwrap();
        token.cancel();
        // The queue is nominally full, but one entry is dead: the push
        // must sweep it out and admit the live request.
        let (b, _rb) = pending("b", None);
        q.push(b).unwrap();
        assert_eq!(q.len(), 2);
        // Full of live entries it still rejects.
        let (c, _rc) = pending("c", None);
        assert_eq!(q.push(c), Err(RejectReason::QueueFull { capacity: 2 }));
    }

    #[test]
    fn pop_batch_watch_returns_none_on_abort_without_draining() {
        let q = std::sync::Arc::new(RequestQueue::new(4));
        let (a, _ra) = pending("a", None);
        q.push(a).unwrap();
        let abort = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let (wq, wa) = (q.clone(), abort.clone());
            let worker = scope.spawn(move || {
                // Batch bigger than the queue + a long linger: only the
                // abort flag can end this pop early.
                wq.pop_batch_watch(8, Duration::from_secs(5), &wa)
            });
            std::thread::sleep(Duration::from_millis(10));
            abort.store(true, Ordering::SeqCst);
            q.wake_all();
            assert!(worker.join().unwrap().is_none());
        });
        // The queued request was not consumed or rejected: it is still
        // there for the supervisor to re-route.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn requeue_puts_requests_back_at_the_front_in_order() {
        let q = RequestQueue::new(4);
        let (a, _ra) = pending("a", None);
        let (b, _rb) = pending("b", None);
        q.push(a).unwrap();
        q.begin_shutdown();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        // A dying worker hands back its batch even mid-shutdown, ahead of
        // anything still queued.
        q.push(b).unwrap_err(); // new work is still refused
        q.requeue(batch);
        let again = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(again[0].request.id, "a");
    }

    #[test]
    fn drain_all_empties_the_queue_for_terminal_rejection() {
        let q = RequestQueue::new(4);
        let (a, ra) = pending("a", None);
        let (b, rb) = pending("b", None);
        q.push(a).unwrap();
        q.push(b).unwrap();
        let orphans = q.drain_all();
        assert_eq!(orphans.len(), 2);
        assert!(q.is_empty());
        for p in orphans {
            p.reject(RejectReason::WorkerError { detail: "no live workers".into() });
        }
        for rx in [ra, rb] {
            match rx.recv().unwrap() {
                ServeReply::Rejected { reason: RejectReason::WorkerError { .. }, .. } => {}
                other => panic!("expected worker_error, got {other:?}"),
            }
        }
    }

    #[test]
    fn concurrent_producers_and_one_worker_drain_everything() {
        let q = std::sync::Arc::new(RequestQueue::new(64));
        let mut rxs = Vec::new();
        std::thread::scope(|scope| {
            let worker_q = q.clone();
            let worker = scope.spawn(move || {
                let mut served = 0;
                while let Some(batch) = worker_q.pop_batch(4, Duration::from_millis(1)) {
                    for p in batch {
                        let _ = p.responder.send(ServeReply::Rejected {
                            id: p.request.id.clone(),
                            reason: RejectReason::WorkerFailure,
                        });
                        served += 1;
                    }
                }
                served
            });
            for i in 0..16 {
                let (p, rx) = pending(&format!("r{i}"), None);
                q.push(p).unwrap();
                rxs.push(rx);
            }
            // let the worker drain, then stop it
            while !q.is_empty() {
                std::thread::sleep(Duration::from_millis(1));
            }
            q.begin_shutdown();
            assert_eq!(worker.join().unwrap(), 16);
        });
        for rx in rxs {
            assert!(rx.recv().is_ok(), "every request must get a reply");
        }
    }
}
