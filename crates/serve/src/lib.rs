//! `aero-serve`: a batched inference serving runtime for trained
//! AeroDiffusion pipelines.
//!
//! The runtime turns the research pipeline into a small production-shaped
//! server:
//!
//! - a bounded, deadline-aware [`queue`] with explicit backpressure — a
//!   full queue rejects with a typed reason instead of blocking;
//! - a dynamic micro-batcher ([`RequestQueue::pop_batch`]) that coalesces
//!   concurrent requests into one `[n, c, h, w]` sampler call, where each
//!   request's seed drives a private noise stream so its image is
//!   byte-identical whether it ran at batch 1 or batch 8;
//! - an LRU condition-embedding [`cache`] keyed by prompt, ablation
//!   variant and guidance scale, shared across workers;
//! - a replica fleet ([`runtime`]): [`ServeConfig::replicas`] worker
//!   groups, each with its own queue and cache, in which every thread
//!   hydrates a private replica of the immutable trained pipeline from a
//!   [`aerodiffusion::PipelineSnapshot`], with a graceful
//!   drain-and-shutdown;
//! - a rendezvous shard [`router`] placing each request by its
//!   `(prompt, variant)` key, so repeats of a prompt hit the group that
//!   already cached its condition embedding, with minimal-disruption
//!   re-routing when a group is down;
//! - [`admission`] control: per-tenant token buckets plus a global
//!   shed gate on live queue-depth and p95-latency signals, answering
//!   with typed `overloaded` replies carrying a `retry_after_ms` hint;
//! - cancellation that propagates mid-sample: a cancelled request is
//!   swept from the queue with a typed reply, and a coalesced sampler
//!   call stops between DDIM steps once every rider is cancelled;
//! - optional streaming of quantized intermediate-latent previews
//!   (`"stream": true` per request, or fleet-wide via config);
//! - per-request panic isolation, non-finite output guards, cache
//!   corruption recovery and a supervisor that respawns dead workers —
//!   and whole killed replica groups, with zero dropped requests — all
//!   driven deterministically in tests by a [`fault::FaultPlan`];
//! - a registry-backed model control path: the runtime can attach an
//!   [`aero_model::ModelRegistry`] and hot-swap the worker pool onto any
//!   published artifact ([`ServeRuntime::swap_from_registry`]) —
//!   in-flight batches finish on the outgoing replicas, workers
//!   rehydrate before their next batch, and a corrupt artifact is
//!   rejected by its CRC with the old model left serving;
//! - an NDJSON [`server`] front-end (request per line in, base64 image
//!   plus per-stage latency per line out) plus `stats`, `models` and
//!   `swap` request types;
//! - a static shape [`lint`] extending `aero-analysis` with the batcher's
//!   coalesced-condition contract against the UNet configuration.
//!
//! The vendored dependency set has no serde or base64, so [`json`] and
//! [`base64`] are small self-contained implementations of exactly the
//! wire format the server speaks.

pub mod admission;
pub mod base64;
pub mod cache;
pub mod fault;
pub mod json;
pub mod lint;
pub mod queue;
pub mod request;
pub mod router;
pub mod runtime;
pub mod server;
pub mod stats;

pub use admission::{AdmissionConfig, AdmissionController, TokenBucket};
pub use aero_diffusion::CancelToken;
pub use cache::{ConditionCache, ConditionKey, LruCache};
pub use fault::{Fault, FaultPlan, SwapFault};
pub use json::Json;
pub use lint::lint_serve;
pub use queue::{Pending, RequestQueue};
pub use request::{
    GenerateRequest, GeneratedImage, ImagePayload, LatentPreview, OverloadScope, RejectReason,
    ServeReply, StageLatency, TaskPayload,
};
pub use router::ShardRouter;
pub use runtime::{ResponseHandle, ServeConfig, ServeRuntime, SwapOutcome};
pub use server::serve_ndjson;
pub use stats::{StatsCollector, StatsReport};
