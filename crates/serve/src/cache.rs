//! The LRU condition-embedding cache.
//!
//! Encoding a condition runs the detector, BLIP fusion, CLIP text encoder
//! and region augmenter — far more work than a cache probe — and repeated
//! prompts are the common case for a serving workload. Entries are keyed
//! by everything the encode depends on: the prompt, the ablation variant,
//! the guidance scale, and — for image-conditioned tasks — the task kind
//! plus a digest of the conditioning image and its geometry/region
//! metadata ([`aerodiffusion::TaskSpec::source_digest`]).

use aero_tensor::Tensor;
use aerodiffusion::{AblationVariant, TaskKind};
use std::collections::HashMap;
use std::hash::Hash;

/// Cache key for one condition embedding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConditionKey {
    /// The target description `G'`.
    pub prompt: String,
    /// The ablation variant the pipeline was trained as.
    pub variant: AblationVariant,
    /// Guidance scale bits (f32 is not `Hash`; the bit pattern is).
    pub guidance_bits: u32,
    /// The workload discriminant ([`TaskKind::Text`] for plain
    /// text-to-image, whose keys are unchanged from the pre-task era).
    pub task_kind: TaskKind,
    /// [`aerodiffusion::TaskSpec::source_digest`] of the image-side
    /// conditioning inputs (0 for text-to-image).
    pub source_digest: u64,
}

impl ConditionKey {
    /// Builds a text-to-image key (the pre-task constructor; kept so
    /// text keys are field-for-field what they always were).
    #[must_use]
    pub fn new(prompt: &str, variant: AblationVariant, guidance_scale: f32) -> Self {
        ConditionKey::for_task(prompt, variant, guidance_scale, TaskKind::Text, 0)
    }

    /// Builds a key for any task kind from its discriminant and source
    /// digest.
    #[must_use]
    pub fn for_task(
        prompt: &str,
        variant: AblationVariant,
        guidance_scale: f32,
        task_kind: TaskKind,
        source_digest: u64,
    ) -> Self {
        ConditionKey {
            prompt: prompt.to_string(),
            variant,
            guidance_bits: guidance_scale.to_bits(),
            task_kind,
            source_digest,
        }
    }
}

/// A strict-capacity LRU map. `get` refreshes recency; inserting beyond
/// capacity evicts the least recently used entry.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, V>,
    /// Keys ordered least → most recently used.
    order: Vec<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache { map: HashMap::new(), order: Vec::new(), capacity }
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let value = self.map.get(key)?.clone();
        self.touch(key);
        Some(value)
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// entry if the cache is full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return None;
        }
        self.order.push(key);
        if self.map.len() > self.capacity {
            let evicted = self.order.remove(0);
            self.map.remove(&evicted);
            return Some(evicted);
        }
        None
    }

    /// Drops every entry (e.g. after a model hot-swap invalidates all
    /// cached embeddings at once). Capacity is unchanged.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Removes an entry outright (e.g. one found to hold corrupt data),
    /// returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let value = self.map.remove(key)?;
        if let Some(i) = self.order.iter().position(|k| k == key) {
            self.order.remove(i);
        }
        Some(value)
    }

    fn touch(&mut self, key: &K) {
        if let Some(i) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(i);
            self.order.push(k);
        }
    }
}

/// The concrete cache the serving runtime shares across workers.
pub type ConditionCache = LruCache<ConditionKey, Tensor>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_strict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(3, 30), Some(1), "oldest entry must be evicted");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        assert_eq!(c.insert(3, 30), Some(2));
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None); // refresh, not a new entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3, 30), Some(2), "refreshed key 1 must outlive key 2");
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn eviction_follows_use_order_exactly() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 1..=3 {
            c.insert(k, k);
        }
        c.get(&1);
        c.get(&3);
        // use order now 2 (LRU), 1, 3 (MRU)
        assert_eq!(c.insert(4, 4), Some(2));
        assert_eq!(c.insert(5, 5), Some(1));
        assert_eq!(c.insert(6, 6), Some(3));
    }

    #[test]
    fn remove_frees_capacity_and_order_slot() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.insert(3, 30), None, "removal must free a slot");
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn condition_keys_distinguish_all_fields() {
        let a = ConditionKey::new("p", AblationVariant::Full, 7.0);
        assert_ne!(a, ConditionKey::new("q", AblationVariant::Full, 7.0));
        assert_ne!(a, ConditionKey::new("p", AblationVariant::BaseSd, 7.0));
        assert_ne!(a, ConditionKey::new("p", AblationVariant::Full, 7.5));
        assert_eq!(a, ConditionKey::new("p", AblationVariant::Full, 7.0));
        // Task kind and source digest both split the key space; the
        // text constructor is the (Text, 0) corner of it.
        let t =
            |kind, digest| ConditionKey::for_task("p", AblationVariant::Full, 7.0, kind, digest);
        assert_eq!(a, t(TaskKind::Text, 0));
        assert_ne!(a, t(TaskKind::Inpaint, 0));
        assert_ne!(t(TaskKind::Inpaint, 1), t(TaskKind::Inpaint, 2));
        assert_ne!(t(TaskKind::View, 1), t(TaskKind::SuperRes, 1));
    }

    #[test]
    #[should_panic(expected = "LRU capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LruCache<u32, u32> = LruCache::new(0);
    }
}
