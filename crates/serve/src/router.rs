//! Rendezvous (highest-random-weight) routing of requests onto replica
//! worker groups.
//!
//! The fleet keys routing on `(prompt, variant)` — the same pair the
//! condition-embedding cache keys on — so every repeat of a prompt lands
//! on the replica group that already holds its embedding. Rendezvous
//! hashing gives the two properties a replica fleet needs from one
//! mechanism:
//!
//! - **locality**: a key maps to the alive group with the highest
//!   per-group hash weight, deterministically, with no shared routing
//!   table to keep consistent;
//! - **minimal disruption**: marking a group down only re-routes the keys
//!   whose top-weight group *was* that group — every other key keeps its
//!   assignment, so a replica kill does not shuffle the surviving
//!   groups' caches.
//!
//! Down-ness is a lock-free per-group flag flipped by the worker that
//! observes the failure and cleared by the supervisor after respawn;
//! routing never blocks on the supervisor.

use std::sync::atomic::{AtomicBool, Ordering};

/// Seed folded into every rendezvous weight so the router's hash family
/// is distinct from any other FNV use in the workspace.
const ROUTE_SEED: u64 = 0x5143_8d6a_9f20_77c1;

/// FNV-1a over `bytes`, continued from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// The fleet's routing table: one alive/down flag per replica group plus
/// the rendezvous weight function.
#[derive(Debug)]
pub struct ShardRouter {
    down: Vec<AtomicBool>,
}

impl ShardRouter {
    /// A router over `groups` replica groups, all initially alive.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    #[must_use]
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "router needs at least one replica group");
        ShardRouter { down: (0..groups).map(|_| AtomicBool::new(false)).collect() }
    }

    /// Number of replica groups routed over (alive or not).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.down.len()
    }

    /// Marks a group down; its keys re-route to survivors until
    /// [`mark_up`](ShardRouter::mark_up).
    pub fn mark_down(&self, group: usize) {
        if let Some(flag) = self.down.get(group) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Marks a respawned group alive again; its keys route home on the
    /// next submission.
    pub fn mark_up(&self, group: usize) {
        if let Some(flag) = self.down.get(group) {
            flag.store(false, Ordering::SeqCst);
        }
    }

    /// Whether `group` is currently marked down.
    #[must_use]
    pub fn is_down(&self, group: usize) -> bool {
        self.down.get(group).is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Alive groups right now.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.down.iter().filter(|flag| !flag.load(Ordering::SeqCst)).count()
    }

    /// The rendezvous weight of `key` on `group` — exposed so tests can
    /// predict placements without a router instance.
    #[must_use]
    pub fn weight(key: &str, group: usize) -> u64 {
        let state = fnv1a(ROUTE_SEED, key.as_bytes());
        fnv1a(state, &group.to_le_bytes())
    }

    /// Routes `key` to the alive group with the highest rendezvous
    /// weight. `None` only when every group is down.
    #[must_use]
    pub fn route(&self, key: &str) -> Option<usize> {
        self.route_excluding(key, None)
    }

    /// [`route`](ShardRouter::route), additionally skipping `excluded`
    /// (a dying group re-routing its own in-flight batch must not hand
    /// the work back to itself before its down flag is visible).
    #[must_use]
    pub fn route_excluding(&self, key: &str, excluded: Option<usize>) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (group, flag) in self.down.iter().enumerate() {
            if flag.load(Ordering::SeqCst) || Some(group) == excluded {
                continue;
            }
            let w = ShardRouter::weight(key, group);
            match best {
                Some((bw, _)) if bw >= w => {}
                _ => best = Some((w, group)),
            }
        }
        best.map(|(_, group)| group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for key in ["a park", "an airstrip", "a river delta", "warehouses"] {
            let g = router.route(key).unwrap();
            assert!(g < 4);
            assert_eq!(router.route(key), Some(g), "same key must route the same way");
        }
    }

    #[test]
    fn keys_spread_across_groups() {
        let router = ShardRouter::new(4);
        let mut seen = [false; 4];
        for i in 0..64 {
            let g = router.route(&format!("prompt-{i}")).unwrap();
            seen[g] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys should touch all 4 groups: {seen:?}");
    }

    #[test]
    fn down_group_reroutes_only_its_own_keys() {
        let router = ShardRouter::new(4);
        let keys: Vec<String> = (0..64).map(|i| format!("prompt-{i}")).collect();
        let before: Vec<usize> = keys.iter().map(|k| router.route(k).unwrap()).collect();
        let victim = before[0];
        router.mark_down(victim);
        assert_eq!(router.alive(), 3);
        for (key, &home) in keys.iter().zip(&before) {
            let now = router.route(key).unwrap();
            assert_ne!(now, victim, "down group must receive nothing");
            if home != victim {
                assert_eq!(now, home, "keys of surviving groups must not move");
            }
        }
        router.mark_up(victim);
        let after: Vec<usize> = keys.iter().map(|k| router.route(k).unwrap()).collect();
        assert_eq!(after, before, "recovery must restore the original placement");
    }

    #[test]
    fn all_down_routes_nowhere() {
        let router = ShardRouter::new(2);
        router.mark_down(0);
        router.mark_down(1);
        assert_eq!(router.route("anything"), None);
        assert_eq!(router.alive(), 0);
    }

    #[test]
    fn route_excluding_skips_the_given_group() {
        let router = ShardRouter::new(2);
        let home = router.route("k").unwrap();
        let other = router.route_excluding("k", Some(home)).unwrap();
        assert_ne!(home, other);
        assert_eq!(router.route_excluding("k", None), Some(home));
    }

    #[test]
    fn single_group_routes_everything_to_it() {
        let router = ShardRouter::new(1);
        assert_eq!(router.route("x"), Some(0));
        assert_eq!(router.route_excluding("x", Some(0)), None);
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let router = ShardRouter::new(2);
        router.mark_down(9);
        router.mark_up(9);
        assert!(!router.is_down(9));
        assert_eq!(router.alive(), 2);
    }
}
