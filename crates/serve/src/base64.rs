//! Standard-alphabet base64 (RFC 4648, with padding) for shipping image
//! bytes inside NDJSON responses without escaping concerns.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded base64.
#[must_use]
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(triple >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 63] as char } else { '=' });
    }
    out
}

/// Decodes padded base64 produced by [`encode`].
///
/// # Errors
///
/// Returns a description of the first malformed character or length.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    fn value(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("invalid base64 byte {other:#04x}")),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = if last { chunk.iter().filter(|&&c| c == b'=').count() } else { 0 };
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".into());
        }
        let mut triple = 0u32;
        for &c in &chunk[..4 - pad] {
            triple = (triple << 6) | value(c)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn round_trips_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("a").is_err());
        assert!(decode("ab!=").is_err());
        assert!(decode("=abc").is_err());
    }
}
