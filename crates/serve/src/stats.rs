//! Aggregate serving statistics, queryable live via the `stats` request
//! type and returned once more by a graceful shutdown.
//!
//! The collector is a thin veneer over a private [`aero_obs::Registry`]:
//! every count lands in a named metric (`serve.completed`,
//! `serve.rejected.queue_full`, `serve.batch_occupancy`, …) so the same
//! numbers surface both through the legacy [`StatsReport`] wire form and
//! through the unified `metrics` endpoint, which merges this registry
//! with the process-global one (tensor kernels, sampler spans, training
//! counters). The registry is per-collector — concurrent runtimes and
//! tests never share serving counters — and every observation is a
//! relaxed atomic, so there is no stats mutex left to contend or poison.

use crate::json::Json;
use crate::request::{OverloadScope, RejectReason, StageLatency};
use aero_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::sync::Arc;

/// Largest batch size tracked with an exact linear bucket; coalesced
/// calls beyond it fold into the overflow bucket. Comfortably above any
/// realistic `max_batch`.
const BATCH_OCCUPANCY_MAX: u64 = 64;

/// Thread-safe accumulator shared by submitters and workers.
///
/// All handles are pre-resolved `Arc`s into the private registry, so the
/// record paths are lock-free atomic adds.
#[derive(Debug)]
pub struct StatsCollector {
    registry: Registry,
    completed: Arc<Counter>,
    rejected_full: Arc<Counter>,
    rejected_deadline: Arc<Counter>,
    rejected_shutdown: Arc<Counter>,
    rejected_worker: Arc<Counter>,
    rejected_worker_error: Arc<Counter>,
    rejected_overloaded: Arc<Counter>,
    rejected_cancelled: Arc<Counter>,
    shed_tenant: Arc<Counter>,
    shed_global: Arc<Counter>,
    worker_panics: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    hydration_failures: Arc<Counter>,
    nonfinite_outputs: Arc<Counter>,
    cache_corruptions: Arc<Counter>,
    replica_kills: Arc<Counter>,
    replica_respawns: Arc<Counter>,
    rerouted: Arc<Counter>,
    sampler_aborts: Arc<Counter>,
    previews: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    queue_us: Arc<Counter>,
    encode_us: Arc<Counter>,
    sample_us: Arc<Counter>,
    decode_us: Arc<Counter>,
    batch_occupancy: Arc<Histogram>,
    e2e_us: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        StatsCollector::new()
    }
}

impl StatsCollector {
    /// Creates an empty collector with its own metric registry.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        StatsCollector {
            completed: registry.counter("serve.completed"),
            rejected_full: registry.counter("serve.rejected.queue_full"),
            rejected_deadline: registry.counter("serve.rejected.deadline_exceeded"),
            rejected_shutdown: registry.counter("serve.rejected.shutting_down"),
            rejected_worker: registry.counter("serve.rejected.worker_failure"),
            rejected_worker_error: registry.counter("serve.rejected.worker_error"),
            rejected_overloaded: registry.counter("serve.rejected.overloaded"),
            rejected_cancelled: registry.counter("serve.rejected.cancelled"),
            shed_tenant: registry.counter("serve.admission.shed_tenant"),
            shed_global: registry.counter("serve.admission.shed_global"),
            worker_panics: registry.counter("serve.fault.worker_panics"),
            worker_restarts: registry.counter("serve.fault.worker_restarts"),
            hydration_failures: registry.counter("serve.fault.hydration_failures"),
            nonfinite_outputs: registry.counter("serve.fault.nonfinite_outputs"),
            cache_corruptions: registry.counter("serve.fault.cache_corruptions"),
            replica_kills: registry.counter("serve.fault.replica_kills"),
            replica_respawns: registry.counter("serve.fault.replica_respawns"),
            rerouted: registry.counter("serve.fault.rerouted_requests"),
            sampler_aborts: registry.counter("serve.cancel.sampler_aborts"),
            previews: registry.counter("serve.stream.previews"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            queue_us: registry.counter("serve.latency.queue_us_total"),
            encode_us: registry.counter("serve.latency.encode_us_total"),
            sample_us: registry.counter("serve.latency.sample_us_total"),
            decode_us: registry.counter("serve.latency.decode_us_total"),
            batch_occupancy: registry
                .histogram("serve.batch_occupancy", &Histogram::linear(BATCH_OCCUPANCY_MAX)),
            e2e_us: registry.histogram("serve.request.e2e_us", &Histogram::exponential_us()),
            queue_depth: registry.gauge("serve.queue_depth"),
            registry,
        }
    }

    /// Records one coalesced sampler call over `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.batch_occupancy.observe(u64::try_from(n).unwrap_or(u64::MAX));
    }

    /// Records one served request's latency breakdown and cache outcome.
    pub fn record_completed(&self, latency: StageLatency, cache_hit: bool) {
        self.completed.inc();
        self.queue_us.add(latency.queue_us);
        self.encode_us.add(latency.encode_us);
        self.sample_us.add(latency.sample_us);
        self.decode_us.add(latency.decode_us);
        self.e2e_us.observe(
            latency
                .queue_us
                .saturating_add(latency.encode_us)
                .saturating_add(latency.sample_us)
                .saturating_add(latency.decode_us),
        );
        if cache_hit {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
    }

    /// Records one rejection by reason.
    pub fn record_rejected(&self, reason: &RejectReason) {
        match reason {
            RejectReason::QueueFull { .. } => self.rejected_full.inc(),
            RejectReason::DeadlineExceeded => self.rejected_deadline.inc(),
            RejectReason::ShuttingDown => self.rejected_shutdown.inc(),
            RejectReason::WorkerFailure => self.rejected_worker.inc(),
            RejectReason::WorkerError { .. } => self.rejected_worker_error.inc(),
            RejectReason::Overloaded { scope, .. } => {
                self.rejected_overloaded.inc();
                match scope {
                    OverloadScope::Tenant => self.shed_tenant.inc(),
                    OverloadScope::Global => self.shed_global.inc(),
                }
            }
            RejectReason::Cancelled => self.rejected_cancelled.inc(),
        }
    }

    /// Records one caught in-worker panic (the request got a typed
    /// `worker_error` reply; the worker is respawned by the watchdog).
    pub fn record_worker_panic(&self) {
        self.worker_panics.inc();
    }

    /// Records one worker respawned by the watchdog.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.inc();
    }

    /// Records one failed snapshot hydration (a worker that could not
    /// build its replica and exited).
    pub fn record_hydration_failure(&self) {
        self.hydration_failures.inc();
    }

    /// Records one sampler output rejected for containing non-finite
    /// values instead of being decoded and returned.
    pub fn record_nonfinite_output(&self) {
        self.nonfinite_outputs.inc();
    }

    /// Records one condition-cache entry discarded as corrupt (non-finite
    /// values) and recomputed.
    pub fn record_cache_corruption(&self) {
        self.cache_corruptions.inc();
    }

    /// Records one replica group killed (injected or real).
    pub fn record_replica_kill(&self) {
        self.replica_kills.inc();
    }

    /// Records one replica group respawned by the supervisor after a
    /// kill.
    pub fn record_replica_respawn(&self) {
        self.replica_respawns.inc();
    }

    /// Records `n` in-flight requests re-routed off a dying replica group
    /// onto survivors.
    pub fn record_reroute(&self, n: usize) {
        self.rerouted.add(u64::try_from(n).unwrap_or(u64::MAX));
    }

    /// Records one sampler call stopped early by cancellation (at least
    /// one DDIM step was skipped).
    pub fn record_sampler_abort(&self) {
        self.sampler_aborts.inc();
    }

    /// Records one streamed intermediate-latent preview reply.
    pub fn record_preview(&self) {
        self.previews.inc();
    }

    /// Served p95 end-to-end latency in microseconds (0 until anything
    /// completed) — the live signal behind the admission p95 gate.
    #[must_use]
    pub fn e2e_p95_us(&self) -> u64 {
        self.e2e_us.snapshot().quantile(0.95)
    }

    /// Publishes the current queue depth (requests waiting).
    pub fn set_queue_depth(&self, depth: usize) {
        #[allow(clippy::cast_precision_loss)]
        self.queue_depth.set(depth as f64);
    }

    /// A consistent point-in-time report in the legacy aggregate shape.
    #[must_use]
    pub fn report(&self) -> StatsReport {
        let completed = self.completed.get();
        let hits = self.cache_hits.get();
        let lookups = hits + self.cache_misses.get();
        let mean = |total_us: u64| {
            if completed == 0 {
                0.0
            } else {
                total_us as f64 / completed as f64
            }
        };
        StatsReport {
            completed,
            rejected_queue_full: self.rejected_full.get(),
            rejected_deadline: self.rejected_deadline.get(),
            rejected_shutting_down: self.rejected_shutdown.get(),
            rejected_worker_failure: self.rejected_worker.get(),
            rejected_worker_error: self.rejected_worker_error.get(),
            rejected_overloaded: self.rejected_overloaded.get(),
            rejected_cancelled: self.rejected_cancelled.get(),
            worker_panics: self.worker_panics.get(),
            worker_restarts: self.worker_restarts.get(),
            hydration_failures: self.hydration_failures.get(),
            nonfinite_outputs: self.nonfinite_outputs.get(),
            cache_corruptions: self.cache_corruptions.get(),
            replica_kills: self.replica_kills.get(),
            replica_respawns: self.replica_respawns.get(),
            rerouted_requests: self.rerouted.get(),
            sampler_aborts: self.sampler_aborts.get(),
            previews_streamed: self.previews.get(),
            cache_hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
            batch_size_hist: batch_hist_from(&self.batch_occupancy.snapshot()),
            mean_queue_us: mean(self.queue_us.get()),
            mean_encode_us: mean(self.encode_us.get()),
            mean_sample_us: mean(self.sample_us.get()),
            mean_decode_us: mean(self.decode_us.get()),
        }
    }

    /// Every serving metric plus the process-global ambient metrics
    /// (tensor kernels, training counters, pipeline gauges) in one
    /// name-ordered snapshot: the payload behind the `metrics` request.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(aero_obs::global().snapshot());
        snap
    }
}

/// Reconstructs the legacy dense `hist[n]` vector from the linear
/// occupancy histogram: bucket `n` holds exactly the batches of size
/// `n`, overflow folds into the last tracked size, trailing zeros are
/// trimmed so an idle collector reports an empty vector.
fn batch_hist_from(snapshot: &aero_obs::HistogramSnapshot) -> Vec<u64> {
    let mut hist = snapshot.buckets.clone();
    let overflow = hist.pop().unwrap_or(0);
    if let Some(last) = hist.last_mut() {
        *last += overflow;
    }
    while hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

/// A snapshot of the aggregate counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Requests served with an image.
    pub completed: u64,
    /// Requests rejected by queue backpressure.
    pub rejected_queue_full: u64,
    /// Requests whose deadline expired while queued.
    pub rejected_deadline: u64,
    /// Requests rejected because a drain had begun.
    pub rejected_shutting_down: u64,
    /// Requests lost to a worker failure.
    pub rejected_worker_failure: u64,
    /// Requests answered with a typed `worker_error` (caught panic,
    /// non-finite output, or failed hydration).
    pub rejected_worker_error: u64,
    /// Requests shed by admission control (tenant throttle or global
    /// overload gate), each with a `retry_after_ms` hint.
    pub rejected_overloaded: u64,
    /// Requests rejected because their client cancelled them.
    pub rejected_cancelled: u64,
    /// In-worker panics caught and converted to typed replies.
    pub worker_panics: u64,
    /// Workers respawned by the watchdog after dying.
    pub worker_restarts: u64,
    /// Workers that failed to hydrate a replica from the snapshot.
    pub hydration_failures: u64,
    /// Sampler outputs rejected for containing NaN/Inf values.
    pub nonfinite_outputs: u64,
    /// Condition-cache entries discarded as corrupt and recomputed.
    pub cache_corruptions: u64,
    /// Replica groups killed (injected faults or real crashes).
    pub replica_kills: u64,
    /// Replica groups respawned whole by the supervisor.
    pub replica_respawns: u64,
    /// In-flight requests re-routed off dying replica groups.
    pub rerouted_requests: u64,
    /// Sampler calls stopped early by cancellation.
    pub sampler_aborts: u64,
    /// Intermediate-latent preview replies streamed.
    pub previews_streamed: u64,
    /// Condition-cache hit rate over all lookups (0 when none).
    pub cache_hit_rate: f64,
    /// `hist[n]` = sampler calls that coalesced `n` requests.
    pub batch_size_hist: Vec<u64>,
    /// Mean queue wait per served request, microseconds.
    pub mean_queue_us: f64,
    /// Mean encode time per served request, microseconds.
    pub mean_encode_us: f64,
    /// Mean sampler share per served request, microseconds.
    pub mean_sample_us: f64,
    /// Mean decode time per served request, microseconds.
    pub mean_decode_us: f64,
}

impl StatsReport {
    /// The NDJSON wire form (`{"type":"stats",…}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", "stats".into()),
            ("completed", self.completed.into()),
            (
                "rejected",
                Json::obj(vec![
                    ("queue_full", self.rejected_queue_full.into()),
                    ("deadline_exceeded", self.rejected_deadline.into()),
                    ("shutting_down", self.rejected_shutting_down.into()),
                    ("worker_failure", self.rejected_worker_failure.into()),
                    ("worker_error", self.rejected_worker_error.into()),
                    ("overloaded", self.rejected_overloaded.into()),
                    ("cancelled", self.rejected_cancelled.into()),
                ]),
            ),
            ("cache_hit_rate", self.cache_hit_rate.into()),
            (
                "batch_size_hist",
                Json::Arr(self.batch_size_hist.iter().map(|&c| c.into()).collect()),
            ),
            (
                "mean_latency_us",
                Json::obj(vec![
                    ("queue", self.mean_queue_us.into()),
                    ("encode", self.mean_encode_us.into()),
                    ("sample", self.mean_sample_us.into()),
                    ("decode", self.mean_decode_us.into()),
                ]),
            ),
            (
                "faults",
                Json::obj(vec![
                    ("worker_panics", self.worker_panics.into()),
                    ("worker_restarts", self.worker_restarts.into()),
                    ("hydration_failures", self.hydration_failures.into()),
                    ("nonfinite_outputs", self.nonfinite_outputs.into()),
                    ("cache_corruptions", self.cache_corruptions.into()),
                    ("replica_kills", self.replica_kills.into()),
                    ("replica_respawns", self.replica_respawns.into()),
                    ("rerouted_requests", self.rerouted_requests.into()),
                ]),
            ),
            ("sampler_aborts", self.sampler_aborts.into()),
            ("previews_streamed", self.previews_streamed.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_latency_and_cache_rate() {
        let stats = StatsCollector::new();
        stats.record_batch(2);
        stats.record_completed(
            StageLatency { queue_us: 10, encode_us: 20, sample_us: 30, decode_us: 40 },
            true,
        );
        stats.record_completed(
            StageLatency { queue_us: 30, encode_us: 0, sample_us: 50, decode_us: 60 },
            false,
        );
        stats.record_rejected(&RejectReason::QueueFull { capacity: 4 });
        let r = stats.report();
        assert_eq!(r.completed, 2);
        assert_eq!(r.rejected_queue_full, 1);
        assert!((r.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(r.batch_size_hist, vec![0, 0, 1]);
        assert!((r.mean_queue_us - 20.0).abs() < 1e-12);
        assert!((r.mean_sample_us - 40.0).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_survive_to_the_wire_form() {
        let stats = StatsCollector::new();
        stats.record_worker_panic();
        stats.record_worker_restart();
        stats.record_worker_restart();
        stats.record_hydration_failure();
        stats.record_nonfinite_output();
        stats.record_cache_corruption();
        stats.record_rejected(&RejectReason::WorkerError { detail: "boom".into() });
        let r = stats.report();
        assert_eq!(r.worker_panics, 1);
        assert_eq!(r.worker_restarts, 2);
        assert_eq!(r.hydration_failures, 1);
        assert_eq!(r.nonfinite_outputs, 1);
        assert_eq!(r.cache_corruptions, 1);
        assert_eq!(r.rejected_worker_error, 1);
        let v = Json::parse(&r.to_json().render()).unwrap();
        let faults = v.get("faults").expect("faults object");
        assert_eq!(faults.get("worker_restarts").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("rejected").and_then(|r| r.get("worker_error")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn fleet_counters_survive_to_the_wire_form() {
        let stats = StatsCollector::new();
        stats.record_replica_kill();
        stats.record_replica_respawn();
        stats.record_reroute(3);
        stats.record_sampler_abort();
        stats.record_preview();
        stats.record_preview();
        stats.record_rejected(&RejectReason::Overloaded {
            retry_after_ms: 25,
            scope: OverloadScope::Global,
        });
        stats.record_rejected(&RejectReason::Overloaded {
            retry_after_ms: 100,
            scope: OverloadScope::Tenant,
        });
        stats.record_rejected(&RejectReason::Cancelled);
        let r = stats.report();
        assert_eq!(r.replica_kills, 1);
        assert_eq!(r.replica_respawns, 1);
        assert_eq!(r.rerouted_requests, 3);
        assert_eq!(r.sampler_aborts, 1);
        assert_eq!(r.previews_streamed, 2);
        assert_eq!(r.rejected_overloaded, 2);
        assert_eq!(r.rejected_cancelled, 1);
        let v = Json::parse(&r.to_json().render()).unwrap();
        let rej = v.get("rejected").expect("rejected object");
        assert_eq!(rej.get("overloaded").and_then(Json::as_u64), Some(2));
        assert_eq!(rej.get("cancelled").and_then(Json::as_u64), Some(1));
        let faults = v.get("faults").expect("faults object");
        assert_eq!(faults.get("replica_kills").and_then(Json::as_u64), Some(1));
        assert_eq!(faults.get("rerouted_requests").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("sampler_aborts").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("previews_streamed").and_then(Json::as_u64), Some(2));
        let snap = stats.metrics_snapshot();
        assert_eq!(snap.counter("serve.admission.shed_global"), Some(1));
        assert_eq!(snap.counter("serve.admission.shed_tenant"), Some(1));
    }

    #[test]
    fn e2e_p95_tracks_served_latency() {
        let stats = StatsCollector::new();
        assert_eq!(stats.e2e_p95_us(), 0, "empty histogram must not shed anything");
        for _ in 0..20 {
            stats.record_completed(
                StageLatency { queue_us: 0, encode_us: 0, sample_us: 10_000, decode_us: 0 },
                false,
            );
        }
        let p95 = stats.e2e_p95_us();
        assert!(p95 >= 10_000, "p95 of 10ms requests must be at least 10ms, got {p95}");
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = StatsCollector::new().report();
        assert_eq!(r.completed, 0);
        assert_eq!(r.cache_hit_rate, 0.0);
        assert_eq!(r.mean_queue_us, 0.0);
        assert_eq!(r.batch_size_hist, Vec::<u64>::new());
    }

    #[test]
    fn wire_form_parses_back() {
        let stats = StatsCollector::new();
        stats.record_batch(1);
        stats.record_completed(StageLatency::default(), false);
        let wire = stats.report().to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("stats"));
        assert_eq!(v.get("completed").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn registry_backs_the_report() {
        let stats = StatsCollector::new();
        stats.record_completed(
            StageLatency { queue_us: 1, encode_us: 2, sample_us: 3, decode_us: 4 },
            true,
        );
        stats.record_batch(1);
        stats.set_queue_depth(5);
        let snap = stats.metrics_snapshot();
        assert_eq!(snap.counter("serve.completed"), Some(1));
        assert_eq!(snap.counter("serve.cache.hits"), Some(1));
        assert_eq!(snap.counter("serve.latency.sample_us_total"), Some(3));
        let depth = snap.gauges.iter().find(|(n, _)| n == "serve.queue_depth").map(|&(_, v)| v);
        assert_eq!(depth, Some(5.0));
        let e2e = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.request.e2e_us")
            .map(|(_, h)| h.clone())
            .expect("e2e histogram registered");
        assert_eq!(e2e.count, 1);
        assert_eq!(e2e.sum, 10);
    }

    #[test]
    fn collectors_do_not_share_counters() {
        let a = StatsCollector::new();
        let b = StatsCollector::new();
        a.record_worker_panic();
        assert_eq!(a.report().worker_panics, 1);
        assert_eq!(b.report().worker_panics, 0);
    }

    #[test]
    fn oversized_batches_fold_into_the_last_bucket() {
        let stats = StatsCollector::new();
        stats.record_batch(super::BATCH_OCCUPANCY_MAX as usize + 10);
        let hist = stats.report().batch_size_hist;
        assert_eq!(hist.len(), super::BATCH_OCCUPANCY_MAX as usize + 1);
        assert_eq!(*hist.last().unwrap(), 1);
    }
}
