//! Aggregate serving statistics, queryable live via the `stats` request
//! type and returned once more by a graceful shutdown.

use crate::json::Json;
use crate::request::{RejectReason, StageLatency};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct Inner {
    completed: u64,
    rejected_full: u64,
    rejected_deadline: u64,
    rejected_shutdown: u64,
    rejected_worker: u64,
    rejected_worker_error: u64,
    worker_panics: u64,
    worker_restarts: u64,
    hydration_failures: u64,
    nonfinite_outputs: u64,
    cache_corruptions: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// `batch_hist[n]` counts sampler calls coalesced over `n` requests.
    batch_hist: Vec<u64>,
    queue_us: u64,
    encode_us: u64,
    sample_us: u64,
    decode_us: u64,
}

/// Thread-safe accumulator shared by submitters and workers.
#[derive(Debug, Default)]
pub struct StatsCollector {
    inner: Mutex<Inner>,
}

impl StatsCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Records one coalesced sampler call over `n` requests.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_batch(&self, n: usize) {
        let mut inner = self.inner.lock().expect("stats lock");
        if inner.batch_hist.len() <= n {
            inner.batch_hist.resize(n + 1, 0);
        }
        inner.batch_hist[n] += 1;
    }

    /// Records one served request's latency breakdown and cache outcome.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_completed(&self, latency: StageLatency, cache_hit: bool) {
        let mut inner = self.inner.lock().expect("stats lock");
        inner.completed += 1;
        inner.queue_us += latency.queue_us;
        inner.encode_us += latency.encode_us;
        inner.sample_us += latency.sample_us;
        inner.decode_us += latency.decode_us;
        if cache_hit {
            inner.cache_hits += 1;
        } else {
            inner.cache_misses += 1;
        }
    }

    /// Records one rejection by reason.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_rejected(&self, reason: &RejectReason) {
        let mut inner = self.inner.lock().expect("stats lock");
        match reason {
            RejectReason::QueueFull { .. } => inner.rejected_full += 1,
            RejectReason::DeadlineExceeded => inner.rejected_deadline += 1,
            RejectReason::ShuttingDown => inner.rejected_shutdown += 1,
            RejectReason::WorkerFailure => inner.rejected_worker += 1,
            RejectReason::WorkerError { .. } => inner.rejected_worker_error += 1,
        }
    }

    /// Records one caught in-worker panic (the request got a typed
    /// `worker_error` reply; the worker is respawned by the watchdog).
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_worker_panic(&self) {
        self.inner.lock().expect("stats lock").worker_panics += 1;
    }

    /// Records one worker respawned by the watchdog.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_worker_restart(&self) {
        self.inner.lock().expect("stats lock").worker_restarts += 1;
    }

    /// Records one failed snapshot hydration (a worker that could not
    /// build its replica and exited).
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_hydration_failure(&self) {
        self.inner.lock().expect("stats lock").hydration_failures += 1;
    }

    /// Records one sampler output rejected for containing non-finite
    /// values instead of being decoded and returned.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_nonfinite_output(&self) {
        self.inner.lock().expect("stats lock").nonfinite_outputs += 1;
    }

    /// Records one condition-cache entry discarded as corrupt (non-finite
    /// values) and recomputed.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    pub fn record_cache_corruption(&self) {
        self.inner.lock().expect("stats lock").cache_corruptions += 1;
    }

    /// A consistent point-in-time report.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned.
    #[must_use]
    pub fn report(&self) -> StatsReport {
        let inner = self.inner.lock().expect("stats lock");
        let lookups = inner.cache_hits + inner.cache_misses;
        let mean = |total_us: u64| {
            if inner.completed == 0 {
                0.0
            } else {
                total_us as f64 / inner.completed as f64
            }
        };
        StatsReport {
            completed: inner.completed,
            rejected_queue_full: inner.rejected_full,
            rejected_deadline: inner.rejected_deadline,
            rejected_shutting_down: inner.rejected_shutdown,
            rejected_worker_failure: inner.rejected_worker,
            rejected_worker_error: inner.rejected_worker_error,
            worker_panics: inner.worker_panics,
            worker_restarts: inner.worker_restarts,
            hydration_failures: inner.hydration_failures,
            nonfinite_outputs: inner.nonfinite_outputs,
            cache_corruptions: inner.cache_corruptions,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                inner.cache_hits as f64 / lookups as f64
            },
            batch_size_hist: inner.batch_hist.clone(),
            mean_queue_us: mean(inner.queue_us),
            mean_encode_us: mean(inner.encode_us),
            mean_sample_us: mean(inner.sample_us),
            mean_decode_us: mean(inner.decode_us),
        }
    }
}

/// A snapshot of the aggregate counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Requests served with an image.
    pub completed: u64,
    /// Requests rejected by queue backpressure.
    pub rejected_queue_full: u64,
    /// Requests whose deadline expired while queued.
    pub rejected_deadline: u64,
    /// Requests rejected because a drain had begun.
    pub rejected_shutting_down: u64,
    /// Requests lost to a worker failure.
    pub rejected_worker_failure: u64,
    /// Requests answered with a typed `worker_error` (caught panic,
    /// non-finite output, or failed hydration).
    pub rejected_worker_error: u64,
    /// In-worker panics caught and converted to typed replies.
    pub worker_panics: u64,
    /// Workers respawned by the watchdog after dying.
    pub worker_restarts: u64,
    /// Workers that failed to hydrate a replica from the snapshot.
    pub hydration_failures: u64,
    /// Sampler outputs rejected for containing NaN/Inf values.
    pub nonfinite_outputs: u64,
    /// Condition-cache entries discarded as corrupt and recomputed.
    pub cache_corruptions: u64,
    /// Condition-cache hit rate over all lookups (0 when none).
    pub cache_hit_rate: f64,
    /// `hist[n]` = sampler calls that coalesced `n` requests.
    pub batch_size_hist: Vec<u64>,
    /// Mean queue wait per served request, microseconds.
    pub mean_queue_us: f64,
    /// Mean encode time per served request, microseconds.
    pub mean_encode_us: f64,
    /// Mean sampler share per served request, microseconds.
    pub mean_sample_us: f64,
    /// Mean decode time per served request, microseconds.
    pub mean_decode_us: f64,
}

impl StatsReport {
    /// The NDJSON wire form (`{"type":"stats",…}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", "stats".into()),
            ("completed", self.completed.into()),
            (
                "rejected",
                Json::obj(vec![
                    ("queue_full", self.rejected_queue_full.into()),
                    ("deadline_exceeded", self.rejected_deadline.into()),
                    ("shutting_down", self.rejected_shutting_down.into()),
                    ("worker_failure", self.rejected_worker_failure.into()),
                    ("worker_error", self.rejected_worker_error.into()),
                ]),
            ),
            ("cache_hit_rate", self.cache_hit_rate.into()),
            (
                "batch_size_hist",
                Json::Arr(self.batch_size_hist.iter().map(|&c| c.into()).collect()),
            ),
            (
                "mean_latency_us",
                Json::obj(vec![
                    ("queue", self.mean_queue_us.into()),
                    ("encode", self.mean_encode_us.into()),
                    ("sample", self.mean_sample_us.into()),
                    ("decode", self.mean_decode_us.into()),
                ]),
            ),
            (
                "faults",
                Json::obj(vec![
                    ("worker_panics", self.worker_panics.into()),
                    ("worker_restarts", self.worker_restarts.into()),
                    ("hydration_failures", self.hydration_failures.into()),
                    ("nonfinite_outputs", self.nonfinite_outputs.into()),
                    ("cache_corruptions", self.cache_corruptions.into()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_latency_and_cache_rate() {
        let stats = StatsCollector::new();
        stats.record_batch(2);
        stats.record_completed(
            StageLatency { queue_us: 10, encode_us: 20, sample_us: 30, decode_us: 40 },
            true,
        );
        stats.record_completed(
            StageLatency { queue_us: 30, encode_us: 0, sample_us: 50, decode_us: 60 },
            false,
        );
        stats.record_rejected(&RejectReason::QueueFull { capacity: 4 });
        let r = stats.report();
        assert_eq!(r.completed, 2);
        assert_eq!(r.rejected_queue_full, 1);
        assert!((r.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(r.batch_size_hist, vec![0, 0, 1]);
        assert!((r.mean_queue_us - 20.0).abs() < 1e-12);
        assert!((r.mean_sample_us - 40.0).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_survive_to_the_wire_form() {
        let stats = StatsCollector::new();
        stats.record_worker_panic();
        stats.record_worker_restart();
        stats.record_worker_restart();
        stats.record_hydration_failure();
        stats.record_nonfinite_output();
        stats.record_cache_corruption();
        stats.record_rejected(&RejectReason::WorkerError { detail: "boom".into() });
        let r = stats.report();
        assert_eq!(r.worker_panics, 1);
        assert_eq!(r.worker_restarts, 2);
        assert_eq!(r.hydration_failures, 1);
        assert_eq!(r.nonfinite_outputs, 1);
        assert_eq!(r.cache_corruptions, 1);
        assert_eq!(r.rejected_worker_error, 1);
        let v = Json::parse(&r.to_json().render()).unwrap();
        let faults = v.get("faults").expect("faults object");
        assert_eq!(faults.get("worker_restarts").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("rejected").and_then(|r| r.get("worker_error")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = StatsCollector::new().report();
        assert_eq!(r.completed, 0);
        assert_eq!(r.cache_hit_rate, 0.0);
        assert_eq!(r.mean_queue_us, 0.0);
    }

    #[test]
    fn wire_form_parses_back() {
        let stats = StatsCollector::new();
        stats.record_batch(1);
        stats.record_completed(StageLatency::default(), false);
        let wire = stats.report().to_json().render();
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("stats"));
        assert_eq!(v.get("completed").and_then(Json::as_u64), Some(1));
    }
}
