//! The newline-delimited-JSON front-end: one request per input line, one
//! reply per output line, replies in submission order.
//!
//! The reader thread parses and submits as fast as input arrives — that
//! is what gives the micro-batcher something to coalesce — while a
//! collector thread resolves the reply handles in FIFO order so output
//! lines line up with input lines. `stats` requests are resolved when the
//! collector reaches them, i.e. after every earlier request has been
//! answered, which makes transcript stats deterministic. `metrics`
//! requests work the same way but return the unified metric registry —
//! serving counters merged with the process-global ambient metrics
//! (tensor kernels, sampler spans, training counters) — as one line.
//!
//! Two streaming extensions ride on the same ordered protocol:
//!
//! - a `{"type":"cancel","id":…}` control line flips the named request's
//!   cancel token the moment the *reader* parses it (cancellation must
//!   not wait behind the FIFO), and is acknowledged in order with
//!   `{"type":"cancel","id":…,"ok":…}`;
//! - a request submitted with `"stream": true` emits zero or more
//!   `{"type":"preview",…}` lines (quantized intermediate latents)
//!   immediately before its terminal reply line.

use crate::json::Json;
use crate::request::{GenerateRequest, ServeReply};
use crate::runtime::{ResponseHandle, ServeRuntime};
use crate::stats::StatsReport;
use aero_diffusion::CancelToken;
use aero_obs::MetricsSnapshot;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// One unit of ordered output.
enum Entry {
    /// A submitted request; the collector blocks on its reply.
    Reply(ResponseHandle),
    /// An immediate reply (rejection or parse error), already final.
    Immediate(Json),
    /// A stats probe, resolved when the collector reaches it.
    Stats,
    /// A unified-metrics probe, resolved when the collector reaches it.
    Metrics,
}

/// The single-line `{"type":"metrics",…}` wire form of a merged
/// snapshot: counters and gauges verbatim, histograms summarized to
/// `count`/`sum`/`mean`/`p50`/`p99` (full buckets stay available through
/// the `profile` CLI's NDJSON export).
fn metrics_json(snap: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("type", "metrics".into()),
        (
            "counters",
            Json::Obj(snap.counters.iter().map(|(n, v)| (n.clone(), (*v).into())).collect()),
        ),
        ("gauges", Json::Obj(snap.gauges.iter().map(|(n, v)| (n.clone(), (*v).into())).collect())),
        (
            "histograms",
            Json::Obj(
                snap.histograms
                    .iter()
                    .map(|(n, h)| {
                        (
                            n.clone(),
                            Json::obj(vec![
                                ("count", h.count.into()),
                                ("sum", h.sum.into()),
                                ("mean", h.mean().into()),
                                ("p50", h.quantile(0.5).into()),
                                ("p99", h.quantile(0.99).into()),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `{"type":"models",…}` reply: the attached registry's contents
/// with per-entry integrity, plus which model is actively serving.
fn models_json(runtime: &ServeRuntime) -> Json {
    match runtime.list_models() {
        Ok(models) => Json::obj(vec![
            ("type", "models".into()),
            ("generation", runtime.model_generation().into()),
            (
                "active",
                match runtime.active_model() {
                    Some((name, version)) => format!("{name}@{version}").into(),
                    None => Json::Null,
                },
            ),
            (
                "models",
                Json::Arr(
                    models
                        .iter()
                        .map(|(entry, state)| {
                            Json::obj(vec![
                                ("name", entry.name.as_str().into()),
                                ("version", u64::from(entry.version).into()),
                                ("file", entry.file.as_str().into()),
                                ("len", entry.len.into()),
                                (
                                    "integrity",
                                    match state {
                                        aero_model::IntegrityState::Verified => "verified".into(),
                                        aero_model::IntegrityState::Missing => "missing".into(),
                                        aero_model::IntegrityState::Corrupt { detail } => {
                                            format!("corrupt: {detail}").into()
                                        }
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Err(e) => Json::obj(vec![
            ("type", "models".into()),
            ("ok", false.into()),
            ("detail", e.to_string().into()),
        ]),
    }
}

/// Executes a `{"type":"swap","name":…[,"version":…]}` control line
/// against the registry. The swap is synchronous from the front-end's
/// point of view: every request on a later input line is served by the
/// new model (in-flight ones finish on the old replicas).
fn swap_json(runtime: &ServeRuntime, v: &Json, fallback_id: &str) -> Json {
    let Some(name) = v.get("name").and_then(Json::as_str) else {
        return bad_request(fallback_id, "swap requires a \"name\" field");
    };
    let version = v.get("version").and_then(Json::as_f64).map(|f| f as u32);
    match runtime.swap_from_registry(name, version) {
        Ok(outcome) => Json::obj(vec![
            ("type", "swap".into()),
            ("ok", true.into()),
            ("name", outcome.entry.name.as_str().into()),
            ("version", u64::from(outcome.entry.version).into()),
            ("generation", outcome.generation.into()),
        ]),
        Err(e) => Json::obj(vec![
            ("type", "swap".into()),
            ("ok", false.into()),
            ("detail", e.to_string().into()),
        ]),
    }
}

/// A `{"type":"error",…}` line for input that never became a request.
fn bad_request(id: &str, detail: &str) -> Json {
    Json::obj(vec![
        ("type", "error".into()),
        ("id", id.into()),
        ("reason", "bad_request".into()),
        ("detail", detail.into()),
    ])
}

/// Serves NDJSON from `input` to `output` until EOF, then drains the
/// runtime and returns the final statistics.
///
/// # Errors
///
/// Propagates I/O errors from reading `input` or writing `output`; the
/// runtime is drained and shut down even on an output error.
pub fn serve_ndjson(
    runtime: ServeRuntime,
    input: impl BufRead,
    mut output: impl Write + Send,
) -> std::io::Result<StatsReport> {
    let (tx, rx) = mpsc::channel::<Entry>();
    let (read_result, write_result) = std::thread::scope(|scope| {
        let runtime = &runtime;
        let collector = scope.spawn(move || -> std::io::Result<()> {
            for entry in rx {
                let reply = match entry {
                    Entry::Reply(handle) => loop {
                        match handle.next_event() {
                            // Streamed previews go out as their own lines,
                            // in place, ahead of the terminal reply.
                            Some(reply) if !reply.is_terminal() => {
                                writeln!(output, "{}", reply.to_json().render())?;
                                output.flush()?;
                            }
                            Some(reply) => break reply.to_json(),
                            // The worker died without answering; `wait`
                            // synthesizes (and records) the typed failure.
                            None => break handle.wait().to_json(),
                        }
                    },
                    Entry::Immediate(json) => json,
                    Entry::Stats => runtime.stats().to_json(),
                    Entry::Metrics => metrics_json(&runtime.metrics()),
                };
                writeln!(output, "{}", reply.render())?;
                output.flush()?;
            }
            Ok(())
        });
        let read_result = read_loop(runtime, input, &tx);
        drop(tx);
        let write_result = collector.join().expect("reply collector panicked");
        (read_result, write_result)
    });
    let stats = runtime.shutdown();
    read_result?;
    write_result?;
    Ok(stats)
}

/// Parses and submits every input line, pushing ordered entries to the
/// collector.
fn read_loop(
    runtime: &ServeRuntime,
    input: impl BufRead,
    tx: &mpsc::Sender<Entry>,
) -> std::io::Result<()> {
    // id → cancel token for every request submitted on this connection,
    // so a later `cancel` line can reach it while it is queued or
    // sampling.
    let mut cancels: HashMap<String, CancelToken> = HashMap::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fallback_id = format!("req-{lineno}");
        let entry = match Json::parse(&line) {
            Err(e) => Entry::Immediate(bad_request(&fallback_id, &format!("invalid JSON: {e}"))),
            Ok(v) => match v.get("type").and_then(Json::as_str).unwrap_or("generate") {
                "stats" => Entry::Stats,
                "metrics" => Entry::Metrics,
                "models" => Entry::Immediate(models_json(runtime)),
                // The swap runs here, in line order: requests on earlier
                // lines were already submitted (they finish on whichever
                // replica pops them), requests on later lines meet the
                // swapped-in model.
                "swap" => Entry::Immediate(swap_json(runtime, &v, &fallback_id)),
                // The cancel takes effect here, as soon as the reader
                // sees the line — only the acknowledgement waits for its
                // turn in the output order. `ok` is false for ids this
                // connection never submitted.
                "cancel" => {
                    let id = v.get("id").and_then(Json::as_str).unwrap_or(&fallback_id);
                    let ok = match cancels.get(id) {
                        Some(token) => {
                            token.cancel();
                            true
                        }
                        None => false,
                    };
                    Entry::Immediate(Json::obj(vec![
                        ("type", "cancel".into()),
                        ("id", id.into()),
                        ("ok", ok.into()),
                    ]))
                }
                "generate" => match GenerateRequest::from_json(&v, &fallback_id) {
                    Err(detail) => Entry::Immediate(bad_request(&fallback_id, &detail)),
                    Ok(request) => {
                        let id = request.id.clone();
                        match runtime.submit(request) {
                            Ok(handle) => {
                                cancels.insert(id, handle.cancel_token());
                                Entry::Reply(handle)
                            }
                            Err(reason) => {
                                Entry::Immediate(ServeReply::Rejected { id, reason }.to_json())
                            }
                        }
                    }
                },
                other => Entry::Immediate(bad_request(
                    &fallback_id,
                    &format!("unknown request type {other:?}"),
                )),
            },
        };
        if tx.send(entry).is_err() {
            break; // collector died on an output error; its result says why
        }
    }
    Ok(())
}
