//! The newline-delimited-JSON front-end: one request per input line, one
//! reply per output line, replies in submission order.
//!
//! The reader thread parses and submits as fast as input arrives — that
//! is what gives the micro-batcher something to coalesce — while a
//! collector thread resolves the reply handles in FIFO order so output
//! lines line up with input lines. `stats` requests are resolved when the
//! collector reaches them, i.e. after every earlier request has been
//! answered, which makes transcript stats deterministic.

use crate::json::Json;
use crate::request::{GenerateRequest, ServeReply};
use crate::runtime::{ResponseHandle, ServeRuntime};
use crate::stats::StatsReport;
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// One unit of ordered output.
enum Entry {
    /// A submitted request; the collector blocks on its reply.
    Reply(ResponseHandle),
    /// An immediate reply (rejection or parse error), already final.
    Immediate(Json),
    /// A stats probe, resolved when the collector reaches it.
    Stats,
}

/// A `{"type":"error",…}` line for input that never became a request.
fn bad_request(id: &str, detail: &str) -> Json {
    Json::obj(vec![
        ("type", "error".into()),
        ("id", id.into()),
        ("reason", "bad_request".into()),
        ("detail", detail.into()),
    ])
}

/// Serves NDJSON from `input` to `output` until EOF, then drains the
/// runtime and returns the final statistics.
///
/// # Errors
///
/// Propagates I/O errors from reading `input` or writing `output`; the
/// runtime is drained and shut down even on an output error.
pub fn serve_ndjson(
    runtime: ServeRuntime,
    input: impl BufRead,
    mut output: impl Write + Send,
) -> std::io::Result<StatsReport> {
    let (tx, rx) = mpsc::channel::<Entry>();
    let (read_result, write_result) = std::thread::scope(|scope| {
        let runtime = &runtime;
        let collector = scope.spawn(move || -> std::io::Result<()> {
            for entry in rx {
                let reply = match entry {
                    Entry::Reply(handle) => handle.wait().to_json(),
                    Entry::Immediate(json) => json,
                    Entry::Stats => runtime.stats().to_json(),
                };
                writeln!(output, "{}", reply.render())?;
                output.flush()?;
            }
            Ok(())
        });
        let read_result = read_loop(runtime, input, &tx);
        drop(tx);
        let write_result = collector.join().expect("reply collector panicked");
        (read_result, write_result)
    });
    let stats = runtime.shutdown();
    read_result?;
    write_result?;
    Ok(stats)
}

/// Parses and submits every input line, pushing ordered entries to the
/// collector.
fn read_loop(
    runtime: &ServeRuntime,
    input: impl BufRead,
    tx: &mpsc::Sender<Entry>,
) -> std::io::Result<()> {
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fallback_id = format!("req-{lineno}");
        let entry = match Json::parse(&line) {
            Err(e) => Entry::Immediate(bad_request(&fallback_id, &format!("invalid JSON: {e}"))),
            Ok(v) => match v.get("type").and_then(Json::as_str).unwrap_or("generate") {
                "stats" => Entry::Stats,
                "generate" => match GenerateRequest::from_json(&v, &fallback_id) {
                    Err(detail) => Entry::Immediate(bad_request(&fallback_id, &detail)),
                    Ok(request) => {
                        let id = request.id.clone();
                        match runtime.submit(request) {
                            Ok(handle) => Entry::Reply(handle),
                            Err(reason) => {
                                Entry::Immediate(ServeReply::Rejected { id, reason }.to_json())
                            }
                        }
                    }
                },
                other => Entry::Immediate(bad_request(
                    &fallback_id,
                    &format!("unknown request type {other:?}"),
                )),
            },
        };
        if tx.send(entry).is_err() {
            break; // collector died on an output error; its result says why
        }
    }
    Ok(())
}
