//! End-to-end serving tests against a real (smoke-scale) trained
//! pipeline. One pipeline is trained once and snapshotted; every test
//! spins its own runtime from the shared snapshot.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_serve::{
    serve_ndjson, Fault, FaultPlan, GenerateRequest, Json, RejectReason, ServeConfig, ServeReply,
    ServeRuntime,
};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use std::io::Cursor;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn snapshot() -> &'static PipelineSnapshot {
    static SNAPSHOT: OnceLock<PipelineSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 11,
            generator: SceneGeneratorConfig::default(),
        });
        AeroDiffusionPipeline::fit(&ds, config, 7).snapshot()
    })
}

fn serve_config() -> ServeConfig {
    let mut config = ServeConfig::for_pipeline(snapshot().config());
    config.workers = 1;
    config.steps = 4; // keep sampling cheap; determinism is what's under test
    config
}

fn image_of(reply: ServeReply) -> aero_serve::GeneratedImage {
    match reply {
        ServeReply::Image(img) => img,
        ServeReply::Rejected { id, reason } => panic!("request {id} rejected: {reason}"),
        ServeReply::Preview(p) => panic!("wait() must not surface previews, got one for {}", p.id),
    }
}

/// The headline contract: a request's bytes depend only on its own seed
/// and prompt, never on what else rode in the coalesced sampler call.
#[test]
fn batched_output_is_byte_identical_to_batch_one() {
    let prompts = [
        "an aerial view of a park",
        "a parking lot at night",
        "an aerial view of a park",
        "a dense downtown block",
    ];
    // Serial reference: batch size is pinned to 1.
    let mut solo = serve_config();
    solo.max_batch = 1;
    solo.batch_wait = Duration::ZERO;
    let runtime = ServeRuntime::start(snapshot().clone(), solo);
    let mut reference = Vec::new();
    for (i, prompt) in prompts.iter().enumerate() {
        let handle =
            runtime.submit(GenerateRequest::new(format!("s{i}"), *prompt, i as u64 + 40)).unwrap();
        reference.push(image_of(handle.wait()));
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    assert!(reference.iter().all(|img| img.batch_size == 1));

    // Batched run: submit everything up front so the worker (still
    // hydrating its replica) finds all four waiting and coalesces them.
    let mut batched = serve_config();
    batched.max_batch = 8;
    batched.batch_wait = Duration::from_millis(200);
    let runtime = ServeRuntime::start(snapshot().clone(), batched);
    let handles: Vec<_> = prompts
        .iter()
        .enumerate()
        .map(|(i, prompt)| {
            runtime.submit(GenerateRequest::new(format!("b{i}"), *prompt, i as u64 + 40)).unwrap()
        })
        .collect();
    let images: Vec<_> = handles.into_iter().map(|h| image_of(h.wait())).collect();
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    assert!(
        images.iter().any(|img| img.batch_size > 1),
        "expected the up-front submissions to coalesce into one sampler call"
    );
    for (slow, fast) in reference.iter().zip(&images) {
        assert_eq!(slow.width, fast.width);
        assert_eq!(slow.rgb8, fast.rgb8, "batching changed request bytes");
    }
}

#[test]
fn repeated_prompts_hit_the_condition_cache() {
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    let first = image_of(
        runtime.submit(GenerateRequest::new("c0", "a river through farmland", 1)).unwrap().wait(),
    );
    let second = image_of(
        runtime.submit(GenerateRequest::new("c1", "a river through farmland", 2)).unwrap().wait(),
    );
    assert!(!first.cache_hit, "first encode of a prompt cannot hit");
    assert!(second.cache_hit, "same prompt + variant + guidance must hit");
    assert_ne!(first.rgb8, second.rgb8, "different seeds must still differ");
    let stats = runtime.shutdown();
    assert!((stats.cache_hit_rate - 0.5).abs() < 1e-9);
}

#[test]
fn full_queue_applies_backpressure_with_typed_error() {
    let mut config = serve_config();
    config.queue_capacity = 1;
    config.max_batch = 1;
    config.batch_wait = Duration::ZERO;
    let runtime = ServeRuntime::start(snapshot().clone(), config);
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for i in 0..8 {
        match runtime.submit(GenerateRequest::new(format!("p{i}"), "a plaza", i)) {
            Ok(handle) => accepted.push(handle),
            Err(reason) => {
                assert_eq!(reason, RejectReason::QueueFull { capacity: 1 });
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "a burst of 8 into capacity 1 must shed load");
    for handle in accepted {
        image_of(handle.wait());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected_queue_full, rejected);
}

#[test]
fn shutdown_drains_queued_work_before_exiting() {
    let mut config = serve_config();
    config.max_batch = 2;
    let runtime = ServeRuntime::start(snapshot().clone(), config);
    let handles: Vec<_> = (0..3)
        .map(|i| runtime.submit(GenerateRequest::new(format!("d{i}"), "a harbor", i)).unwrap())
        .collect();
    // Shutdown begins while the worker may not even have hydrated yet;
    // everything already accepted must still be served.
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    for handle in handles {
        image_of(handle.wait());
    }
}

#[test]
fn expired_deadline_is_rejected_not_sampled() {
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    let mut request = GenerateRequest::new("late", "a stadium", 0);
    request.deadline = Some(Duration::ZERO);
    let reply = runtime.submit(request).unwrap().wait();
    match reply {
        ServeReply::Rejected { id, reason } => {
            assert_eq!(id, "late");
            assert_eq!(reason, RejectReason::DeadlineExceeded);
        }
        ServeReply::Image(_) | ServeReply::Preview(_) => {
            panic!("expired request must not be sampled")
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
}

/// Polls runtime stats until `probe` holds or ~5s elapse. Worker respawns
/// happen on the watchdog's clock, not the test's, so assertions about
/// them must wait rather than race.
fn await_stats(runtime: &ServeRuntime, probe: impl Fn(&aero_serve::StatsReport) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe(&runtime.stats()) {
        assert!(Instant::now() < deadline, "stats probe never satisfied: {:?}", runtime.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn injected_request_panic_is_isolated_and_the_worker_is_replaced() {
    let plan = Arc::new(FaultPlan::new().inject(1, Fault::PanicRequest));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), serve_config(), Some(plan));
    let handles: Vec<_> = (0..4)
        .map(|i| runtime.submit(GenerateRequest::new(format!("f{i}"), "a park", i)).unwrap())
        .collect();
    let replies: Vec<_> = handles.into_iter().map(aero_serve::ResponseHandle::wait).collect();
    // Exactly the faulted request fails, with a typed reason; every other
    // request in (and after) its batch is still served.
    for (i, reply) in replies.iter().enumerate() {
        match reply {
            ServeReply::Image(img) if i != 1 => assert_eq!(img.id, format!("f{i}")),
            ServeReply::Rejected { id, reason: RejectReason::WorkerError { .. } } if i == 1 => {
                assert_eq!(id, "f1");
            }
            other => panic!("request {i}: unexpected reply {other:?}"),
        }
    }
    // The suspect worker exits after its batch and the watchdog replaces
    // it (on its own schedule — wait, don't race).
    await_stats(&runtime, |s| s.worker_restarts >= 1);
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.rejected_worker_error, 1);
    assert!(stats.worker_restarts >= 1);
}

#[test]
fn killed_worker_hands_its_batch_back_and_nothing_is_dropped() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::KillWorker));
    let mut config = serve_config();
    config.batch_wait = Duration::from_millis(100); // coalesce all three
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), config, Some(plan));
    let handles: Vec<_> = (0..3)
        .map(|i| runtime.submit(GenerateRequest::new(format!("k{i}"), "a harbor", i)).unwrap())
        .collect();
    // The lone worker dies holding all three requests; the respawned one
    // must serve every single one of them.
    for handle in handles {
        image_of(handle.wait());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    assert!(stats.worker_restarts >= 1, "a replacement worker must have served the batch");
    assert_eq!(stats.rejected_worker_error, 0, "a requeued batch loses no requests");
}

#[test]
fn corrupt_cache_entry_is_evicted_and_recomputed() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::CorruptCacheEntry));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), serve_config(), Some(plan));
    let prompt = "a river through farmland";
    let first = image_of(runtime.submit(GenerateRequest::new("x0", prompt, 1)).unwrap().wait());
    let second = image_of(runtime.submit(GenerateRequest::new("x1", prompt, 1)).unwrap().wait());
    let third = image_of(runtime.submit(GenerateRequest::new("x2", prompt, 1)).unwrap().wait());
    assert!(!first.cache_hit);
    assert!(!second.cache_hit, "the poisoned entry must be evicted, not served");
    assert_eq!(first.rgb8, second.rgb8, "recomputed condition must reproduce the image");
    assert!(third.cache_hit, "the recomputed entry must be cached again");
    let stats = runtime.shutdown();
    assert_eq!(stats.cache_corruptions, 1);
    assert_eq!(stats.completed, 3);
}

#[test]
fn nonfinite_latents_become_a_typed_reply_not_an_image() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::NanLatents));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), serve_config(), Some(plan));
    let bad = runtime.submit(GenerateRequest::new("n0", "a stadium", 3)).unwrap().wait();
    match bad {
        ServeReply::Rejected { id, reason: RejectReason::WorkerError { detail } } => {
            assert_eq!(id, "n0");
            assert!(detail.contains("non-finite"), "detail should name the cause: {detail}");
        }
        other => panic!("NaN latents must not decode into an image: {other:?}"),
    }
    // The worker itself is healthy (immutable weights; the NaN came from
    // injection) and keeps serving.
    image_of(runtime.submit(GenerateRequest::new("n1", "a stadium", 3)).unwrap().wait());
    let stats = runtime.shutdown();
    assert_eq!(stats.nonfinite_outputs, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.worker_restarts, 0);
}

#[test]
fn unhydratable_snapshot_fails_typed_and_never_hangs_clients() {
    let mut config = serve_config();
    config.workers = 2;
    let runtime = ServeRuntime::start(snapshot().with_truncated_unet(), config);
    let mut handles = Vec::new();
    for i in 0..4 {
        match runtime.submit(GenerateRequest::new(format!("h{i}"), "a plaza", i)) {
            Ok(handle) => handles.push(handle),
            // The watchdog may already have begun the terminal drain.
            Err(reason) => assert_eq!(reason, RejectReason::ShuttingDown),
        }
    }
    // Every accepted request must resolve — to a typed error, not a hang.
    for handle in handles {
        match handle.wait() {
            ServeReply::Rejected {
                reason:
                    RejectReason::WorkerError { .. }
                    | RejectReason::WorkerFailure
                    | RejectReason::ShuttingDown,
                ..
            } => {}
            other => panic!("expected typed rejection from a dead pool, got {other:?}"),
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.hydration_failures, 2, "both workers must report the bad snapshot");
    assert_eq!(stats.completed, 0);
}

#[test]
fn seeded_chaos_plan_resolves_every_request() {
    // A reproducible mixed-fault run: whatever the plan throws at the
    // pool, every submitted request must resolve to exactly one reply.
    let plan = Arc::new(FaultPlan::seeded(7, 8));
    let mut config = serve_config();
    config.max_worker_restarts = 16;
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), config, Some(plan));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            runtime.submit(GenerateRequest::new(format!("c{i}"), "a downtown block", i)).unwrap()
        })
        .collect();
    let mut images = 0;
    let mut typed_errors = 0;
    for handle in handles {
        match handle.wait() {
            ServeReply::Image(_) => images += 1,
            ServeReply::Rejected { reason: RejectReason::WorkerError { .. }, .. } => {
                typed_errors += 1;
            }
            other => panic!("unexpected reply under chaos: {other:?}"),
        }
    }
    assert_eq!(images + typed_errors, 8, "zero dropped replies under injected faults");
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, images);
}

#[test]
fn ndjson_round_trip_preserves_order_and_reports_stats() {
    let input = concat!(
        r#"{"type":"generate","id":"a","prompt":"an aerial view of a park","seed":5}"#,
        "\n",
        r#"{"type":"generate","id":"b","prompt":"a parking lot at night","seed":6}"#,
        "\n",
        "not json\n",
        r#"{"type":"stats"}"#,
        "\n",
        r#"{"type":"metrics"}"#,
        "\n",
    );
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    let mut output = Vec::new();
    let stats = serve_ndjson(runtime, Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.completed, 2);
    let lines: Vec<Json> =
        String::from_utf8(output).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 5, "one reply line per input line");
    assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("image"));
    assert_eq!(lines[0].get("id").and_then(Json::as_str), Some("a"));
    assert_eq!(lines[1].get("id").and_then(Json::as_str), Some("b"));
    let px = aero_serve::base64::decode(lines[0].get("rgb8_b64").and_then(Json::as_str).unwrap())
        .unwrap();
    let side = snapshot().config().vision.image_size;
    assert_eq!(px.len(), 3 * side * side);
    assert_eq!(lines[2].get("reason").and_then(Json::as_str), Some("bad_request"));
    // The stats probe resolves after both images, so it must see them.
    assert_eq!(lines[3].get("type").and_then(Json::as_str), Some("stats"));
    assert_eq!(lines[3].get("completed").and_then(Json::as_u64), Some(2));
    // The unified metrics probe carries the serving registry (merged
    // with the process-global ambient metrics) as one line.
    assert_eq!(lines[4].get("type").and_then(Json::as_str), Some("metrics"));
    let counters = lines[4].get("counters").expect("counters object");
    assert_eq!(counters.get("serve.completed").and_then(Json::as_u64), Some(2));
    assert!(counters.get("serve.cache.misses").and_then(Json::as_u64).unwrap_or(0) >= 1);
    let e2e = lines[4]
        .get("histograms")
        .and_then(|h| h.get("serve.request.e2e_us"))
        .expect("e2e latency histogram");
    assert_eq!(e2e.get("count").and_then(Json::as_u64), Some(2));
    // The ambient half of the merge: the sampler ran, so the global
    // tensor kernel counters must be present and non-zero.
    assert!(counters.get("tensor.matmul.calls").and_then(Json::as_u64).unwrap_or(0) >= 1);
}

/// The three image-conditioned task kinds serve end to end, a
/// heterogeneous batch (text + view + inpaint + superres coalesced into
/// one sampler call) is byte-identical per row to solo batch-1 runs, and
/// a wrong-size source image is rejected typed instead of panicking the
/// worker.
#[test]
fn task_requests_serve_end_to_end_and_mix_into_batches() {
    use aero_scene::{Annotation, BBox, ObjectClass, Viewpoint};
    use aero_serve::{ImagePayload, TaskPayload};
    let side = snapshot().config().vision.image_size;
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 2,
        image_size: side,
        seed: 77,
        generator: SceneGeneratorConfig::default(),
    });
    let source = ImagePayload::from_image(&ds.items[0].rendered.image);
    let low_res = ImagePayload::from_image(&ds.items[1].rendered.image.resize(side / 2, side / 2));
    let make_requests = || {
        let text = GenerateRequest::new("t-text", "an aerial view of a park", 61);
        let mut view = GenerateRequest::new("t-view", "the park from the north", 62);
        view.task = Some(TaskPayload::View {
            image: source.clone(),
            source_view: Viewpoint::default(),
            target_view: Viewpoint { altitude: 0.6, pitch_deg: 60.0, heading_deg: 30.0 },
        });
        let mut inpaint = GenerateRequest::new("t-inp", "a truck at the center", 63);
        inpaint.task = Some(TaskPayload::Inpaint {
            image: source.clone(),
            boxes: vec![Annotation {
                class: ObjectClass::Truck,
                bbox: BBox::new(4.0, 4.0, 11.0, 10.0),
            }],
        });
        let mut superres = GenerateRequest::new("t-sr", "a sharper aerial photo", 64);
        superres.task = Some(TaskPayload::SuperRes { image: low_res.clone() });
        vec![text, view, inpaint, superres]
    };

    // Solo reference: every task sampled alone.
    let mut solo = serve_config();
    solo.max_batch = 1;
    solo.batch_wait = Duration::ZERO;
    let runtime = ServeRuntime::start(snapshot().clone(), solo);
    let mut reference = Vec::new();
    for request in make_requests() {
        reference.push(image_of(runtime.submit(request).unwrap().wait()));
    }
    assert_eq!(runtime.shutdown().completed, 4);
    assert!(reference.iter().all(|img| (img.width, img.height) == (side, side)));

    // Heterogeneous batch: all four submitted up front coalesce.
    let mut batched = serve_config();
    batched.max_batch = 8;
    batched.batch_wait = Duration::from_millis(200);
    let runtime = ServeRuntime::start(snapshot().clone(), batched);
    let handles: Vec<_> = make_requests().into_iter().map(|r| runtime.submit(r).unwrap()).collect();
    let images: Vec<_> = handles.into_iter().map(|h| image_of(h.wait())).collect();
    assert_eq!(runtime.shutdown().completed, 4);
    assert!(
        images.iter().any(|img| img.batch_size > 1),
        "expected the up-front task submissions to coalesce into one sampler call"
    );
    for (slow, fast) in reference.iter().zip(&images) {
        assert_eq!(slow.rgb8, fast.rgb8, "task batching changed request bytes");
    }

    // A wrong-size source is a typed rejection, never a worker panic.
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    let mut bad = GenerateRequest::new("t-bad", "a truck at the center", 65);
    bad.task = Some(TaskPayload::Inpaint {
        image: ImagePayload::from_image(&ds.items[0].rendered.image.resize(side * 2, side * 2)),
        boxes: vec![Annotation { class: ObjectClass::Car, bbox: BBox::new(1.0, 1.0, 4.0, 4.0) }],
    });
    match runtime.submit(bad).unwrap().wait() {
        ServeReply::Rejected { id, reason: RejectReason::WorkerError { detail } } => {
            assert_eq!(id, "t-bad");
            assert!(detail.contains("source image"), "untyped shape error: {detail}");
        }
        other => panic!("wrong-size source must reject typed, got {other:?}"),
    }
    let after =
        image_of(runtime.submit(GenerateRequest::new("t-after", "a plaza", 66)).unwrap().wait());
    assert_eq!((after.width, after.height), (side, side), "serving must continue after a reject");
    let stats = runtime.shutdown();
    assert_eq!((stats.completed, stats.rejected_worker_error), (1, 1));
}

/// A second trained model, distinct from [`snapshot`], for swap targets.
fn alt_snapshot() -> &'static PipelineSnapshot {
    static ALT: OnceLock<PipelineSnapshot> = OnceLock::new();
    ALT.get_or_init(|| {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 12,
            generator: SceneGeneratorConfig::default(),
        });
        AeroDiffusionPipeline::fit(&ds, config, 99).snapshot()
    })
}

/// A fresh registry directory holding [`alt_snapshot`] as `alt` v1.
fn registry_with_alt(tag: &str) -> aero_model::ModelRegistry {
    let dir = std::env::temp_dir().join(format!("aero_serve_registry_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = aero_model::ModelRegistry::open(&dir).unwrap();
    let (bytes, _report) =
        aero_model::export_snapshot(alt_snapshot(), aero_model::Quantization::F32).unwrap();
    registry.publish("alt", &bytes).unwrap();
    registry
}

#[test]
fn hot_swap_serves_the_new_model_with_zero_dropped_requests() {
    let prompt = "an aerial view of a park";
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    runtime.set_registry(registry_with_alt("hot_swap"));
    assert_eq!(runtime.active_model(), None);
    assert_eq!(runtime.model_generation(), 0);

    let before = image_of(runtime.submit(GenerateRequest::new("pre", prompt, 40)).unwrap().wait());

    let outcome = runtime.swap_from_registry("alt", None).unwrap();
    assert_eq!((outcome.entry.name.as_str(), outcome.entry.version), ("alt", 1));
    assert_eq!(outcome.generation, 1);
    assert_eq!(runtime.active_model(), Some(("alt".into(), 1)));

    let after = image_of(runtime.submit(GenerateRequest::new("post", prompt, 40)).unwrap().wait());
    assert_ne!(before.rgb8, after.rgb8, "the swapped-in model must actually serve");

    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2, "a swap must not drop or reject any request");
    assert_eq!(stats.rejected_worker_failure, 0);

    // The post-swap bytes are exactly what a runtime booted from the
    // swap target would serve: the f32 artifact round trip is lossless
    // and the condition cache was cleared at swap time.
    let reference = ServeRuntime::start(alt_snapshot().clone(), serve_config());
    let expected =
        image_of(reference.submit(GenerateRequest::new("ref", prompt, 40)).unwrap().wait());
    let _ = reference.shutdown();
    assert_eq!(after.rgb8, expected.rgb8, "swapped model must serve byte-identically");
}

#[test]
fn corrupt_artifact_swap_is_rejected_and_the_old_model_keeps_serving() {
    let prompt = "a parking lot at night";
    let plan = Arc::new(FaultPlan::new().inject_swap(0, aero_serve::SwapFault::CorruptArtifact));
    let mut config = serve_config();
    config.max_batch = 2;
    let runtime =
        ServeRuntime::start_with_faults(snapshot().clone(), config, Some(Arc::clone(&plan)));
    runtime.set_registry(registry_with_alt("corrupt_swap"));

    // Load the pool, then yank the swap lever while requests are in
    // flight: the corrupt artifact must be rejected by its CRC and every
    // request — submitted before or after the attempt — must resolve on
    // the old model.
    let in_flight: Vec<_> = (0..4)
        .map(|i| {
            runtime.submit(GenerateRequest::new(format!("in-{i}"), prompt, 60 + i as u64)).unwrap()
        })
        .collect();
    let err = runtime.swap_from_registry("alt", None).unwrap_err();
    assert!(
        matches!(err, aero_model::ModelError::Corrupt { .. }),
        "corrupt artifact must fail typed, got {err:?}"
    );
    assert_eq!(plan.remaining(), 0, "the swap fault fired");
    assert_eq!(runtime.active_model(), None, "the failed swap must not be recorded active");
    assert_eq!(runtime.model_generation(), 0, "the failed swap must not touch the slot");

    let before =
        image_of(runtime.submit(GenerateRequest::new("probe-a", prompt, 7)).unwrap().wait());
    for handle in in_flight {
        let _ = image_of(handle.wait());
    }
    // A second attempt (fault is one-shot) goes through clean…
    let outcome = runtime.swap_from_registry("alt", None).unwrap();
    assert_eq!(outcome.generation, 1);
    // …which confirms the first failure really was the injected fault.
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 5, "zero dropped requests across both swap attempts");
    assert_eq!(stats.rejected_worker_failure, 0);

    // And the pre-retry probe was served by the original model.
    let reference = ServeRuntime::start(snapshot().clone(), serve_config());
    let expected =
        image_of(reference.submit(GenerateRequest::new("ref", prompt, 7)).unwrap().wait());
    let _ = reference.shutdown();
    assert_eq!(before.rgb8, expected.rgb8, "old model must keep serving after a failed swap");
}

#[test]
fn ndjson_models_and_swap_lines_drive_the_registry() {
    let input = concat!(
        r#"{"type":"models"}"#,
        "\n",
        r#"{"type":"generate","id":"pre","prompt":"an aerial view of a park","seed":3}"#,
        "\n",
        r#"{"type":"swap","name":"alt"}"#,
        "\n",
        r#"{"type":"generate","id":"post","prompt":"an aerial view of a park","seed":3}"#,
        "\n",
        r#"{"type":"swap","name":"no-such-model"}"#,
        "\n",
        r#"{"type":"models"}"#,
        "\n",
    );
    let runtime = ServeRuntime::start(snapshot().clone(), serve_config());
    runtime.set_registry(registry_with_alt("ndjson"));
    let mut output = Vec::new();
    let stats = serve_ndjson(runtime, Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.completed, 2);
    let lines: Vec<Json> =
        String::from_utf8(output).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 6, "one reply line per input line");

    assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("models"));
    let listed = match lines[0].get("models") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("models reply must carry an array, got {other:?}"),
    };
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].get("name").and_then(Json::as_str), Some("alt"));
    assert_eq!(listed[0].get("integrity").and_then(Json::as_str), Some("verified"));

    assert_eq!(lines[1].get("type").and_then(Json::as_str), Some("image"));
    assert_eq!(lines[2].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(lines[2].get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(lines[3].get("type").and_then(Json::as_str), Some("image"));
    // A request on a line after the swap is guaranteed to be served by
    // the swapped-in model (the "pre" request races the swap — it may be
    // popped on either side, which is exactly the drain-free contract).
    let post_px =
        aero_serve::base64::decode(lines[3].get("rgb8_b64").and_then(Json::as_str).unwrap())
            .unwrap();
    let reference = ServeRuntime::start(alt_snapshot().clone(), serve_config());
    let expected = image_of(
        reference
            .submit(GenerateRequest::new("ref", "an aerial view of a park", 3))
            .unwrap()
            .wait(),
    );
    let _ = reference.shutdown();
    assert_eq!(post_px, expected.rgb8, "post-swap lines must be served by the new model");
    assert_eq!(lines[4].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(lines[5].get("active").and_then(Json::as_str), Some("alt@1"));
}
