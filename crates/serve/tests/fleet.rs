//! Fleet-level end-to-end tests: replica-kill fault tolerance, admission
//! control, cancellation and streamed previews against a real
//! (smoke-scale) trained pipeline.
//!
//! The headline contracts under test:
//!
//! - **zero dropped requests** when an entire replica group is killed
//!   mid-batch — survivors absorb the rerouted work, the supervisor
//!   respawns the group, and every reply is **byte-identical** to an
//!   unfaulted single-replica baseline;
//! - admission sheds with a *typed* `overloaded` reply (never a hang),
//!   and a retry after the pressure clears succeeds;
//! - a cancelled request provably stops sampling before its final step.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_serve::{
    serve_ndjson, Fault, FaultPlan, GenerateRequest, Json, OverloadScope, RejectReason,
    ServeConfig, ServeReply, ServeRuntime,
};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot};
use std::io::Cursor;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn snapshot() -> &'static PipelineSnapshot {
    static SNAPSHOT: OnceLock<PipelineSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 11,
            generator: SceneGeneratorConfig::default(),
        });
        AeroDiffusionPipeline::fit(&ds, config, 7).snapshot()
    })
}

/// A fleet config: `replicas` groups of one worker each, batching wide
/// enough that a whole submission burst rides one sampler call per group.
fn fleet_config(replicas: usize) -> ServeConfig {
    let mut config = ServeConfig::for_pipeline(snapshot().config());
    config.replicas = replicas;
    config.workers = 1;
    config.steps = 4; // keep sampling cheap; determinism is what's under test
    config.batch_wait = Duration::from_millis(100);
    config
}

fn image_of(reply: ServeReply) -> aero_serve::GeneratedImage {
    match reply {
        ServeReply::Image(img) => img,
        ServeReply::Rejected { id, reason } => panic!("request {id} rejected: {reason}"),
        ServeReply::Preview(p) => panic!("wait() must not surface previews, got one for {}", p.id),
    }
}

/// Polls runtime stats until `probe` holds or ~5s elapse. Respawns happen
/// on the supervisor's clock, not the test's, so assertions about them
/// must wait rather than race.
fn await_stats(runtime: &ServeRuntime, probe: impl Fn(&aero_serve::StatsReport) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe(&runtime.stats()) {
        assert!(Instant::now() < deadline, "stats probe never satisfied: {:?}", runtime.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Serves `(prompt, seed)` pairs on an unfaulted single-replica runtime —
/// the baseline every fault-tolerance test compares bytes against.
fn baseline_images(jobs: &[(&str, u64)]) -> Vec<Vec<u8>> {
    let runtime = ServeRuntime::start(snapshot().clone(), fleet_config(1));
    let images = jobs
        .iter()
        .enumerate()
        .map(|(i, (prompt, seed))| {
            image_of(
                runtime
                    .submit(GenerateRequest::new(format!("ref{i}"), *prompt, *seed))
                    .unwrap()
                    .wait(),
            )
            .rgb8
        })
        .collect();
    let _ = runtime.shutdown();
    images
}

/// The headline fault-tolerance contract: killing a whole replica group
/// while it holds a popped batch drops nothing, and every reply is
/// byte-identical to the unfaulted single-replica baseline.
#[test]
fn replica_kill_mid_batch_drops_nothing_and_stays_byte_identical() {
    let jobs: Vec<(&str, u64)> = vec![
        ("an aerial view of a park", 40),
        ("a parking lot at night", 41),
        ("a dense downtown block", 42),
        ("a river through farmland", 43),
        ("a harbor at dawn", 44),
        ("a stadium from above", 45),
    ];
    let baseline = baseline_images(&jobs);

    // Kill fires when the batch holding submission #0 is popped; its
    // whole group dies holding that batch.
    let plan = Arc::new(FaultPlan::new().inject_replica_kill(0));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(2), Some(plan));
    let handles: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, (prompt, seed))| {
            runtime.submit(GenerateRequest::new(format!("k{i}"), *prompt, *seed)).unwrap()
        })
        .collect();
    let images: Vec<_> = handles.into_iter().map(|h| image_of(h.wait())).collect();
    for (i, (img, expected)) in images.iter().zip(&baseline).enumerate() {
        assert_eq!(
            &img.rgb8, expected,
            "request {i}: a replica kill must not change a single output byte"
        );
    }

    // The supervisor respawns the killed group on its own schedule.
    await_stats(&runtime, |s| s.replica_respawns >= 1);
    assert_eq!(runtime.alive_replicas(), 2, "the killed group must come back up");
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 6, "zero dropped requests under a replica kill");
    assert_eq!(stats.replica_kills, 1);
    assert!(stats.replica_respawns >= 1);
    assert!(stats.rerouted_requests >= 1, "the killed batch must have been rerouted");
    assert_eq!(stats.rejected_worker_failure, 0);
    assert_eq!(stats.rejected_worker_error, 0);
}

/// With a single replica group there is no survivor to absorb the batch:
/// the dying group requeues onto its own (still-live) queue and the
/// respawned workers serve everything.
#[test]
fn single_replica_kill_requeues_home_and_respawns() {
    let jobs: Vec<(&str, u64)> = vec![("a harbor", 1), ("a plaza", 2), ("a harbor", 3)];
    let baseline = baseline_images(&jobs);
    let plan = Arc::new(FaultPlan::new().inject_replica_kill(0));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(1), Some(plan));
    let handles: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, (prompt, seed))| {
            runtime.submit(GenerateRequest::new(format!("h{i}"), *prompt, *seed)).unwrap()
        })
        .collect();
    for (i, (handle, expected)) in handles.into_iter().zip(&baseline).enumerate() {
        assert_eq!(image_of(handle.wait()).rgb8, *expected, "request {i} changed bytes");
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.replica_kills, 1);
    assert_eq!(stats.replica_respawns, 1);
    assert!(stats.worker_restarts >= 1, "the group respawn consumes one restart");
}

/// A second trained model, distinct from [`snapshot`], for swap targets.
fn alt_snapshot() -> &'static PipelineSnapshot {
    static ALT: OnceLock<PipelineSnapshot> = OnceLock::new();
    ALT.get_or_init(|| {
        let config = PipelineConfig::smoke();
        let ds = build_dataset(&DatasetConfig {
            n_scenes: 3,
            image_size: config.vision.image_size,
            seed: 12,
            generator: SceneGeneratorConfig::default(),
        });
        AeroDiffusionPipeline::fit(&ds, config, 99).snapshot()
    })
}

/// A fresh registry directory holding [`alt_snapshot`] as `alt` v1.
fn registry_with_alt(tag: &str) -> aero_model::ModelRegistry {
    let dir = std::env::temp_dir().join(format!("aero_serve_fleet_registry_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = aero_model::ModelRegistry::open(&dir).unwrap();
    let (bytes, _report) =
        aero_model::export_snapshot(alt_snapshot(), aero_model::Quantization::F32).unwrap();
    registry.publish("alt", &bytes).unwrap();
    registry
}

/// A replica kill racing a hot swap: pre-swap requests may land on either
/// model (the drain-free swap contract), but nothing is dropped, and
/// requests submitted after the swap are served by the new model.
#[test]
fn replica_kill_during_swap_drops_nothing() {
    let prompt = "an aerial view of a park";
    let plan = Arc::new(FaultPlan::new().inject_replica_kill(1));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(2), Some(plan));
    runtime.set_registry(registry_with_alt("kill_during_swap"));

    let pre: Vec<_> = (0..3)
        .map(|i| {
            runtime.submit(GenerateRequest::new(format!("pre{i}"), prompt, 70 + i as u64)).unwrap()
        })
        .collect();
    let outcome = runtime.swap_from_registry("alt", None).unwrap();
    assert_eq!(outcome.generation, 1);
    let post: Vec<_> = (0..3)
        .map(|i| {
            runtime.submit(GenerateRequest::new(format!("post{i}"), prompt, 70 + i as u64)).unwrap()
        })
        .collect();

    for handle in pre {
        let _ = image_of(handle.wait());
    }
    let post_images: Vec<_> = post.into_iter().map(|h| image_of(h.wait())).collect();
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 6, "zero dropped requests across kill + swap");
    assert_eq!(stats.replica_kills, 1);

    // Post-swap lines meet the new model everywhere — on the survivor
    // (which rehydrates before its next batch) and on the respawned
    // group (which hydrates from the swapped-in slot).
    let reference = ServeRuntime::start(alt_snapshot().clone(), fleet_config(1));
    for (i, img) in post_images.iter().enumerate() {
        let expected = image_of(
            reference
                .submit(GenerateRequest::new(format!("r{i}"), prompt, 70 + i as u64))
                .unwrap()
                .wait(),
        );
        assert_eq!(img.rgb8, expected.rgb8, "post-swap request {i} must be on the new model");
    }
    let _ = reference.shutdown();
}

/// A kill and a cancellation in the same burst: the cancelled request
/// resolves to a typed `cancelled` reply, the rest ride the reroute and
/// keep their exact bytes.
#[test]
fn kill_and_cancel_interleave_cleanly() {
    let jobs: Vec<(&str, u64)> =
        vec![("a parking lot at night", 8), ("a plaza", 9), ("a dense downtown block", 10)];
    let baseline = baseline_images(&jobs);
    let plan = Arc::new(FaultPlan::new().inject_replica_kill(0));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(2), Some(plan));
    let handles: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, (prompt, seed))| {
            runtime.submit(GenerateRequest::new(format!("kc{i}"), *prompt, *seed)).unwrap()
        })
        .collect();
    // Cancel the middle request while the workers are still hydrating:
    // it must resolve as `cancelled`, not an image, whether it was swept
    // from a queue or dropped at the sampler's door after the reroute.
    handles[1].cancel();
    let replies: Vec<_> = handles.into_iter().map(aero_serve::ResponseHandle::wait).collect();
    for (i, reply) in replies.into_iter().enumerate() {
        match reply {
            ServeReply::Image(img) if i != 1 => {
                assert_eq!(img.rgb8, baseline[i], "survivor request {i} changed bytes");
            }
            ServeReply::Rejected { id, reason: RejectReason::Cancelled } if i == 1 => {
                assert_eq!(id, "kc1");
            }
            other => panic!("request {i}: unexpected reply {other:?}"),
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected_cancelled, 1);
    assert_eq!(stats.replica_kills, 1);
}

/// The global depth gate sheds a burst with typed `overloaded` replies
/// carrying the configured backoff hint — and admits again once the
/// queues drain.
#[test]
fn overload_sheds_typed_and_recovers() {
    let mut config = fleet_config(1);
    config.admission.shed_queue_depth = 2;
    config.admission.retry_after_ms = 25;
    let runtime = ServeRuntime::start(snapshot().clone(), config);
    let mut accepted = Vec::new();
    let mut shed = 0;
    for i in 0..8 {
        match runtime.submit(GenerateRequest::new(format!("o{i}"), "a plaza", i)) {
            Ok(handle) => accepted.push(handle),
            Err(reason) => {
                assert_eq!(
                    reason,
                    RejectReason::Overloaded { retry_after_ms: 25, scope: OverloadScope::Global },
                    "a depth shed must be typed, global, and carry the hint"
                );
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "a burst of 8 into a depth gate of 2 must shed load");
    // Every admitted request still resolves to an image — shedding never
    // poisons in-flight work.
    let served = accepted.len() as u64;
    for handle in accepted {
        image_of(handle.wait());
    }
    // With the queues drained, a well-behaved retry (the client waited
    // out the hint) is admitted and served.
    let retry = runtime.submit(GenerateRequest::new("o-retry", "a plaza", 99)).unwrap();
    image_of(retry.wait());
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected_overloaded, shed);
    assert_eq!(stats.completed, served + 1);
}

/// Per-tenant buckets are isolated: one tenant exhausting its burst is
/// throttled with a tenant-scoped hint while another tenant sails
/// through.
#[test]
fn tenant_buckets_isolate_tenants() {
    let mut config = fleet_config(1);
    config.admission.tenant_rate = 0.001; // effectively no refill in test time
    config.admission.tenant_burst = 2.0;
    let runtime = ServeRuntime::start(snapshot().clone(), config);
    let tenant_req = |id: &str, tenant: &str, seed: u64| {
        let mut request = GenerateRequest::new(id, "a harbor", seed);
        request.tenant = Some(tenant.to_string());
        runtime.submit(request)
    };
    let a0 = tenant_req("a0", "team-a", 1).unwrap();
    let a1 = tenant_req("a1", "team-a", 2).unwrap();
    match tenant_req("a2", "team-a", 3) {
        Err(RejectReason::Overloaded { retry_after_ms, scope: OverloadScope::Tenant }) => {
            // The hint reflects the bucket deficit at 1/1000 rps: about a
            // thousand seconds, definitely not the global gate's 25ms.
            assert!(retry_after_ms > 1_000, "deficit hint should be large, got {retry_after_ms}");
        }
        other => panic!("tenant over its burst must be throttled, got {other:?}"),
    }
    // A different tenant's bucket is untouched.
    let b0 = tenant_req("b0", "team-b", 4).unwrap();
    image_of(a0.wait());
    image_of(a1.wait());
    image_of(b0.wait());
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected_overloaded, 1);
}

/// A cancelled request provably stops sampling before its final step:
/// the sampler abort counter fires and fewer previews than steps arrive.
#[test]
fn cancel_mid_sample_stops_before_the_final_step() {
    let steps = 32;
    let runtime = ServeRuntime::start(snapshot().clone(), fleet_config(1));
    let mut request = GenerateRequest::new("c0", "a stadium from above", 5);
    request.steps = Some(steps);
    request.stream = true;
    let handle = runtime.submit(request).unwrap();
    let mut previews = 0;
    let terminal = loop {
        match handle.next_event() {
            Some(ServeReply::Preview(p)) => {
                assert_eq!(p.total_steps, steps);
                previews += 1;
                // Cancel as soon as sampling demonstrably started; 31
                // steps of margin remain for the flag to land.
                if previews == 1 {
                    handle.cancel();
                }
            }
            Some(reply) => break reply,
            None => panic!("worker died without a terminal reply"),
        }
    };
    match terminal {
        ServeReply::Rejected { id, reason: RejectReason::Cancelled } => assert_eq!(id, "c0"),
        other => panic!("a cancelled request must resolve as cancelled, got {other:?}"),
    }
    assert!(
        previews < steps,
        "cancellation must stop the DDIM loop early, but all {steps} previews arrived"
    );
    let stats = runtime.shutdown();
    assert_eq!(stats.sampler_aborts, 1, "the abort must be observable in stats");
    assert_eq!(stats.rejected_cancelled, 1);
    assert_eq!(stats.completed, 0);
    assert!(stats.previews_streamed >= 1);
}

/// A respawned group starts from a cold condition cache (the kill clears
/// it), then warms back up.
#[test]
fn respawned_group_recomputes_conditions() {
    let prompt = "a river through farmland";
    let plan = Arc::new(FaultPlan::new().inject_replica_kill(2));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(1), Some(plan));
    let r0 = image_of(runtime.submit(GenerateRequest::new("r0", prompt, 1)).unwrap().wait());
    let r1 = image_of(runtime.submit(GenerateRequest::new("r1", prompt, 2)).unwrap().wait());
    // Submission #2 triggers the kill; after the respawn it is served
    // against a cleared cache.
    let r2 = image_of(runtime.submit(GenerateRequest::new("r2", prompt, 3)).unwrap().wait());
    let r3 = image_of(runtime.submit(GenerateRequest::new("r3", prompt, 4)).unwrap().wait());
    assert!(!r0.cache_hit, "first encode of a prompt cannot hit");
    assert!(r1.cache_hit, "warm cache before the kill");
    assert!(!r2.cache_hit, "the kill must clear the group's condition cache");
    assert!(r3.cache_hit, "the recomputed entry is cached again");
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.replica_kills, 1);
    assert_eq!(stats.replica_respawns, 1);
}

/// A poisoned condition-cache lock on one group neither loses the entry
/// nor stalls the fleet: the lock is recovered, the insert sticks, and
/// other requests keep flowing.
#[test]
fn poisoned_cache_lock_recovers_without_stalling() {
    let prompt = "an aerial view of a park";
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::PoisonCacheLock));
    let runtime = ServeRuntime::start_with_faults(snapshot().clone(), fleet_config(2), Some(plan));
    let x0 = image_of(runtime.submit(GenerateRequest::new("x0", prompt, 1)).unwrap().wait());
    let x1 = image_of(runtime.submit(GenerateRequest::new("x1", prompt, 2)).unwrap().wait());
    // Same prompt routes to the same group, so the hit proves the insert
    // went through the recovered (previously poisoned) lock.
    assert!(!x0.cache_hit);
    assert!(x1.cache_hit, "a recovered lock must still cache the computed condition");
    // The rest of the fleet is untouched.
    let y0 = image_of(
        runtime.submit(GenerateRequest::new("y0", "a parking lot at night", 3)).unwrap().wait(),
    );
    assert_eq!(y0.id, "y0");
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.worker_restarts, 0, "a poisoned lock must not cost a worker");
}

/// Fleet-wide preview streaming: every step emits a decodable quantized
/// latent before the terminal image, and streaming never changes the
/// image bytes.
#[test]
fn streamed_previews_precede_the_terminal_image() {
    let prompt = "a dense downtown block";
    let mut config = fleet_config(1);
    config.stream_previews = true;
    let runtime = ServeRuntime::start(snapshot().clone(), config);
    let handle = runtime.submit(GenerateRequest::new("s0", prompt, 21)).unwrap();
    let mut previews = Vec::new();
    let streamed = loop {
        match handle.next_event() {
            Some(ServeReply::Preview(p)) => previews.push(p),
            Some(reply) => break image_of(reply),
            None => panic!("worker died without a terminal reply"),
        }
    };
    assert_eq!(previews.len(), 4, "one preview per DDIM step");
    for (i, p) in previews.iter().enumerate() {
        assert_eq!(p.step, i, "previews arrive in step order");
        assert_eq!(p.total_steps, 4);
        assert!(p.min <= p.max);
        let [c, h, w] = p.shape;
        assert_eq!(p.latent_q8.len(), c * h * w, "quantized latent matches its shape");
    }
    // `wait` discards previews, so a caller that ignores the stream
    // still gets exactly its image.
    let plain = image_of(runtime.submit(GenerateRequest::new("s1", prompt, 21)).unwrap().wait());
    assert_eq!(streamed.rgb8, plain.rgb8, "streaming must not perturb the image bytes");
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.previews_streamed, 8);

    // And the bytes match a runtime that never streamed at all.
    let reference = ServeRuntime::start(snapshot().clone(), fleet_config(1));
    let expected =
        image_of(reference.submit(GenerateRequest::new("ref", prompt, 21)).unwrap().wait());
    let _ = reference.shutdown();
    assert_eq!(streamed.rgb8, expected.rgb8);
}

/// The NDJSON front-end speaks the streaming extensions: preview lines
/// ahead of the terminal image line, and `cancel` control lines
/// acknowledged in order (`ok:false` for unknown ids).
#[test]
fn ndjson_stream_and_cancel_lines() {
    let input = concat!(
        r#"{"type":"generate","id":"s","prompt":"a harbor at dawn","seed":2,"steps":3,"stream":true}"#,
        "\n",
        r#"{"type":"cancel","id":"nope"}"#,
        "\n",
        r#"{"type":"stats"}"#,
        "\n",
    );
    let runtime = ServeRuntime::start(snapshot().clone(), fleet_config(1));
    let mut output = Vec::new();
    let stats = serve_ndjson(runtime, Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.previews_streamed, 3);
    let lines: Vec<Json> =
        String::from_utf8(output).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 6, "3 previews + image + cancel ack + stats");
    for (i, line) in lines.iter().take(3).enumerate() {
        assert_eq!(line.get("type").and_then(Json::as_str), Some("preview"));
        assert_eq!(line.get("id").and_then(Json::as_str), Some("s"));
        assert_eq!(line.get("step").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(line.get("steps").and_then(Json::as_u64), Some(3));
        let q8 =
            aero_serve::base64::decode(line.get("latent_q8_b64").and_then(Json::as_str).unwrap())
                .unwrap();
        assert!(!q8.is_empty(), "preview lines carry the quantized latent");
    }
    assert_eq!(lines[3].get("type").and_then(Json::as_str), Some("image"));
    assert_eq!(lines[3].get("id").and_then(Json::as_str), Some("s"));
    assert_eq!(lines[4].get("type").and_then(Json::as_str), Some("cancel"));
    assert_eq!(lines[4].get("id").and_then(Json::as_str), Some("nope"));
    assert_eq!(lines[4].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(lines[5].get("type").and_then(Json::as_str), Some("stats"));
    assert_eq!(lines[5].get("completed").and_then(Json::as_u64), Some(1));
}
