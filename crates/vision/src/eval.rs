//! Evaluation utilities for the vision substrates: detector
//! precision/recall curves and CLIP retrieval accuracy.

use crate::clip::ClipModel;
use crate::detector::{detection_pr, YoloLite};
use aero_scene::Annotation;
use aero_tensor::Tensor;

/// Aggregate detector quality over a dataset at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorReport {
    /// Confidence threshold evaluated.
    pub confidence: f32,
    /// Mean precision over images (images with no detections count 0).
    pub precision: f32,
    /// Mean recall over images.
    pub recall: f32,
    /// Mean detections per image.
    pub mean_detections: f32,
}

impl DetectorReport {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f32 {
        let denom = self.precision + self.recall;
        if denom <= 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / denom
        }
    }
}

/// Evaluates a detector over (image, ground-truth) pairs at an IoU
/// threshold, for each confidence operating point.
pub fn evaluate_detector(
    detector: &YoloLite,
    samples: &[(Tensor, Vec<Annotation>)],
    confidences: &[f32],
    iou_threshold: f32,
) -> Vec<DetectorReport> {
    confidences
        .iter()
        .map(|&conf| {
            let mut p_sum = 0.0;
            let mut r_sum = 0.0;
            let mut d_sum = 0.0;
            for (image, truth) in samples {
                let dets = detector.detect(image, conf, 0.4);
                let (p, r) = detection_pr(&dets, truth, iou_threshold);
                p_sum += p;
                r_sum += r;
                d_sum += dets.len() as f32;
            }
            let n = samples.len().max(1) as f32;
            DetectorReport {
                confidence: conf,
                precision: p_sum / n,
                recall: r_sum / n,
                mean_detections: d_sum / n,
            }
        })
        .collect()
}

/// CLIP retrieval accuracy: fraction of images whose own caption is the
/// nearest text embedding among all captions (R@1, image→text).
///
/// # Panics
///
/// Panics if the pair lists are empty or mismatched.
pub fn clip_retrieval_at_1(clip: &ClipModel, images: &Tensor, token_batches: &[Vec<usize>]) -> f32 {
    let n = token_batches.len();
    assert!(n > 0, "retrieval needs at least one pair");
    assert_eq!(images.shape()[0], n, "one image per caption");
    let img = clip.encode_image(images);
    let txt = clip.encode_text(token_batches);
    let d = img.shape()[1];
    let mut hits = 0usize;
    for i in 0..n {
        let qi = img.narrow(0, i, 1).reshape(&[d]);
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for j in 0..n {
            let tj = txt.narrow(0, j, 1).reshape(&[d]);
            let sim = qi.dot(&tj);
            if sim > best_sim {
                best_sim = sim;
                best = j;
            }
        }
        if best == i {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clip::ClipPair;
    use crate::VisionConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn f1_of_perfect_report_is_one() {
        let r =
            DetectorReport { confidence: 0.5, precision: 1.0, recall: 1.0, mean_detections: 3.0 };
        assert_eq!(r.f1(), 1.0);
        let z =
            DetectorReport { confidence: 0.5, precision: 0.0, recall: 0.0, mean_detections: 0.0 };
        assert_eq!(z.f1(), 0.0);
    }

    #[test]
    fn evaluate_detector_monotone_detection_count() {
        // Lower confidence thresholds can only produce >= detections.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = VisionConfig::tiny();
        let det = YoloLite::new(cfg, &mut rng);
        let samples: Vec<(Tensor, Vec<Annotation>)> = (0..3)
            .map(|i| {
                (
                    Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut StdRng::seed_from_u64(i)),
                    Vec::new(),
                )
            })
            .collect();
        let reports = evaluate_detector(&det, &samples, &[0.5, 0.1, 0.01], 0.3);
        assert!(reports[0].mean_detections <= reports[1].mean_detections);
        assert!(reports[1].mean_detections <= reports[2].mean_detections);
    }

    #[test]
    fn trained_clip_retrieval_beats_chance() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = VisionConfig::tiny();
        let mut clip = ClipModel::new(20, cfg, &mut rng);
        // strongly distinguishable pairs
        let pairs: Vec<ClipPair> = (0..6)
            .map(|i| {
                let mut img = Tensor::zeros(&[3, cfg.image_size, cfg.image_size]);
                let plane = cfg.image_size * cfg.image_size;
                for v in &mut img.as_mut_slice()[(i % 3) * plane..(i % 3 + 1) * plane] {
                    *v = 0.2 + 0.25 * (i / 3) as f32 + 0.3;
                }
                ClipPair { image: img, tokens: vec![4 + i; cfg.max_text_len] }
            })
            .collect();
        clip.train_contrastive(&pairs, 15, 6, 5e-3, &mut rng);
        let refs: Vec<&Tensor> = pairs.iter().map(|p| &p.image).collect();
        let images = Tensor::stack(&refs);
        let tokens: Vec<Vec<usize>> = pairs.iter().map(|p| p.tokens.clone()).collect();
        let r1 = clip_retrieval_at_1(&clip, &images, &tokens);
        assert!(r1 > 1.0 / 6.0, "R@1 {r1} should beat chance");
    }
}
