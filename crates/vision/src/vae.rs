//! The latent-space variational autoencoder.
//!
//! Stands in for the Stable Diffusion VAE: compresses `[3, s, s]` images
//! into `[zc, s/4, s/4]` latents (`z_0 = E(X_i)` in the paper's forward
//! diffusion) and decodes sampled latents back to RGB. Trained with
//! reconstruction MSE plus a KL term toward the standard normal.
//!
//! Encode/decode convolutions run on the sharded parallel kernel layer
//! (`aero_tensor::par_kernels`); latents and reconstructions are
//! bit-identical at every thread count.

use crate::VisionConfig;
use aero_nn::layers::{Conv2d, ConvTranspose2d};
use aero_nn::optim::Adam;
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// Number of latent channels (matching Stable Diffusion's 4).
pub const LATENT_CHANNELS: usize = 4;

/// Convolutional VAE with a 4× spatial compression.
#[derive(Debug, Clone)]
pub struct Vae {
    enc1: Conv2d,
    enc2: Conv2d,
    to_mu: Conv2d,
    to_logvar: Conv2d,
    dec_in: Conv2d,
    dec1: ConvTranspose2d,
    dec2: ConvTranspose2d,
    dec_out: Conv2d,
    latent_scale: f32,
    config: VisionConfig,
}

impl Vae {
    /// Creates an untrained VAE for the configured image size.
    pub fn new<R: Rng + ?Sized>(config: VisionConfig, rng: &mut R) -> Self {
        let c = config.base_channels;
        Vae {
            enc1: Conv2d::new(3, c, 3, 2, 1, rng),
            enc2: Conv2d::new(c, 2 * c, 3, 2, 1, rng),
            to_mu: Conv2d::new(2 * c, LATENT_CHANNELS, 1, 1, 0, rng),
            to_logvar: Conv2d::new(2 * c, LATENT_CHANNELS, 1, 1, 0, rng),
            dec_in: Conv2d::new(LATENT_CHANNELS, 2 * c, 1, 1, 0, rng),
            dec1: ConvTranspose2d::new(2 * c, c, 2, 2, 0, rng),
            dec2: ConvTranspose2d::new(c, c, 2, 2, 0, rng),
            dec_out: Conv2d::new(c, 3, 3, 1, 1, rng),
            latent_scale: 1.0,
            config,
        }
    }

    /// Latent spatial side (`image_size / 4`).
    pub fn latent_size(&self) -> usize {
        self.config.image_size / 4
    }

    /// The scale factor applied to latents before diffusion (the analogue
    /// of Stable Diffusion's 0.18215), fitted by [`Vae::fit_latent_scale`].
    pub fn latent_scale(&self) -> f32 {
        self.latent_scale
    }

    /// Restores a previously fitted latent scale (used when loading saved
    /// weights).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn set_latent_scale(&mut self, scale: f32) {
        assert!(scale.is_finite() && scale > 0.0, "latent scale must be positive");
        self.latent_scale = scale;
    }

    /// Differentiable encoder: images `[n, 3, s, s]` → `(mu, logvar)`,
    /// each `[n, zc, s/4, s/4]`.
    pub fn encode(&self, images: &Var) -> (Var, Var) {
        let h = self.enc1.forward(images).silu();
        let h = self.enc2.forward(&h).silu();
        (self.to_mu.forward(&h), self.to_logvar.forward(&h))
    }

    /// Differentiable decoder: latents → images in `[0, 1]`.
    pub fn decode(&self, z: &Var) -> Var {
        let h = self.dec_in.forward(z).silu();
        let h = self.dec1.forward(&h).silu();
        let h = self.dec2.forward(&h).silu();
        self.dec_out.forward(&h).sigmoid()
    }

    /// Non-differentiable latent of an image batch, scaled for diffusion:
    /// `z = mu · latent_scale`.
    pub fn encode_tensor(&self, images: &Tensor) -> Tensor {
        let (mu, _) = self.encode(&Var::constant(images.clone()));
        mu.to_tensor().mul_scalar(self.latent_scale)
    }

    /// Non-differentiable decode of diffusion-space latents (descaled).
    pub fn decode_tensor(&self, z: &Tensor) -> Tensor {
        self.decode(&Var::constant(z.mul_scalar(1.0 / self.latent_scale))).to_tensor()
    }

    /// Full reconstruction of an image batch.
    pub fn reconstruct(&self, images: &Tensor) -> Tensor {
        self.decode_tensor(&self.encode_tensor(images))
    }

    /// Trains the VAE; returns per-epoch mean losses.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        images: &[Tensor],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        kl_weight: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.params(), lr);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..images.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(1)) {
                let batch: Vec<&Tensor> = chunk.iter().map(|&i| &images[i]).collect();
                let x = Tensor::stack(&batch);
                opt.zero_grad();
                let xv = Var::constant(x.clone());
                let (mu, logvar) = self.encode(&xv);
                // Reparameterization trick.
                let noise = Var::constant(Tensor::randn(&mu.shape(), rng));
                let z = mu.add(&logvar.scale(0.5).exp().mul(&noise));
                let recon = self.decode(&z);
                let recon_loss = recon.mse_loss(&x);
                // KL(q || N(0, I)) = -0.5 Σ (1 + logvar − mu² − e^logvar)
                let kl =
                    logvar.add_scalar(1.0).sub(&mu.mul(&mu)).sub(&logvar.exp()).mean().scale(-0.5);
                let loss = recon_loss.add(&kl.scale(kl_weight));
                total += loss.value().item();
                batches += 1;
                loss.backward();
                opt.step();
            }
            history.push(if batches > 0 { total / batches as f32 } else { 0.0 });
        }
        history
    }

    /// Fits `latent_scale` so diffusion-space latents have roughly unit
    /// standard deviation over the given images.
    pub fn fit_latent_scale(&mut self, images: &[Tensor]) {
        if images.is_empty() {
            return;
        }
        let refs: Vec<&Tensor> = images.iter().collect();
        let batch = Tensor::stack(&refs);
        let (mu, _) = self.encode(&Var::constant(batch));
        let std = mu.to_tensor().var().sqrt().max(1e-3);
        self.latent_scale = 1.0 / std;
    }
}

impl Module for Vae {
    fn params(&self) -> Vec<Var> {
        let mut p = self.enc1.params();
        p.extend(self.enc2.params());
        p.extend(self.to_mu.params());
        p.extend(self.to_logvar.params());
        p.extend(self.dec_in.params());
        p.extend(self.dec1.params());
        p.extend(self.dec2.params());
        p.extend(self.dec_out.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_images(n: usize, s: usize, rng: &mut StdRng) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                // Smooth, structured images: a bright band whose position
                // depends on i, plus light noise.
                let mut t = Tensor::full(&[3, s, s], 0.3);
                let band = (i * s / n.max(1)).min(s - 2);
                for c in 0..3 {
                    for x in 0..s {
                        t.set(&[c, band, x], 0.9);
                        t.set(&[c, band + 1, x], 0.9);
                    }
                }
                t.add(&Tensor::randn(&[3, s, s], rng).mul_scalar(0.02)).clamp(0.0, 1.0)
            })
            .collect()
    }

    #[test]
    fn shapes_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = VisionConfig::tiny();
        let vae = Vae::new(cfg, &mut rng);
        let imgs = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let z = vae.encode_tensor(&imgs);
        assert_eq!(z.shape(), &[2, LATENT_CHANNELS, 4, 4]);
        let back = vae.decode_tensor(&z);
        assert_eq!(back.shape(), &[2, 3, 16, 16]);
        assert!(back.min() >= 0.0 && back.max() <= 1.0);
    }

    #[test]
    fn training_improves_reconstruction() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = VisionConfig::tiny();
        let mut vae = Vae::new(cfg, &mut rng);
        let images = toy_images(8, 16, &mut rng);
        let refs: Vec<&Tensor> = images.iter().collect();
        let batch = Tensor::stack(&refs);
        let before = vae.reconstruct(&batch).sub(&batch).powf(2.0).mean();
        vae.train(&images, 20, 4, 3e-3, 1e-4, &mut rng);
        let after = vae.reconstruct(&batch).sub(&batch).powf(2.0).mean();
        assert!(after < before, "recon mse should fall: {before} -> {after}");
    }

    #[test]
    fn latent_scale_normalizes_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = VisionConfig::tiny();
        let mut vae = Vae::new(cfg, &mut rng);
        let images = toy_images(6, 16, &mut rng);
        vae.train(&images, 8, 3, 3e-3, 1e-4, &mut rng);
        vae.fit_latent_scale(&images);
        let refs: Vec<&Tensor> = images.iter().collect();
        let z = vae.encode_tensor(&Tensor::stack(&refs));
        let std = z.var().sqrt();
        assert!((std - 1.0).abs() < 0.35, "scaled latent std {std}");
    }

    #[test]
    fn kl_pulls_latents_toward_origin() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = VisionConfig::tiny();
        let images = toy_images(6, 16, &mut rng);
        let mut strong = Vae::new(cfg, &mut StdRng::seed_from_u64(9));
        let mut weak = Vae::new(cfg, &mut StdRng::seed_from_u64(9));
        strong.train(&images, 12, 3, 3e-3, 0.5, &mut StdRng::seed_from_u64(10));
        weak.train(&images, 12, 3, 3e-3, 0.0, &mut StdRng::seed_from_u64(10));
        let refs: Vec<&Tensor> = images.iter().collect();
        let batch = Tensor::stack(&refs);
        let (mu_s, _) = strong.encode(&Var::constant(batch.clone()));
        let (mu_w, _) = weak.encode(&Var::constant(batch));
        let ns = mu_s.to_tensor().powf(2.0).mean();
        let nw = mu_w.to_tensor().powf(2.0).mean();
        assert!(ns < nw, "strong KL should shrink latents: {ns} vs {nw}");
    }
}
