//! Vision substrates for the AeroDiffusion reproduction.
//!
//! The paper leans on four pretrained vision systems that are not
//! available here, so this crate trains small equivalents from scratch on
//! the synthetic paired dataset:
//!
//! * [`clip::ClipModel`] — a CLIP-lite joint text–image embedding space,
//!   trained contrastively (InfoNCE) on (image, caption) pairs. It
//!   provides the `C_g = CLIP(G'_i)` conditioning branch and the CLIP
//!   score metric.
//! * [`blip::BlipFusion`] — a BLIP-lite deep fusion encoder: caption
//!   tokens cross-attend over image patch features, producing the
//!   `C_xg = BLIP(X_i, G_i)` branch.
//! * [`vae::Vae`] — the latent-space autoencoder (the paper uses the
//!   Stable Diffusion VAE) compressing `[3, s, s]` images to
//!   `[4, s/4, s/4]` latents.
//! * [`detector::YoloLite`] — a single-scale grid detector standing in
//!   for the YOLO model the paper trains on VisDrone, supplying the
//!   regions of interest for feature augmentation.
//!
//! All models share the [`VisionConfig`] geometry so the pipeline crate
//! can wire them together.

pub mod blip;
pub mod clip;
pub mod detector;
pub mod encoders;
pub mod eval;
pub mod vae;

/// Shared geometry for the vision substrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisionConfig {
    /// Square input image size (pixels).
    pub image_size: usize,
    /// Joint embedding dimensionality.
    pub embed_dim: usize,
    /// Base convolution width.
    pub base_channels: usize,
    /// Fixed token length for text inputs.
    pub max_text_len: usize,
}

impl Default for VisionConfig {
    fn default() -> Self {
        VisionConfig { image_size: 32, embed_dim: 32, base_channels: 8, max_text_len: 24 }
    }
}

impl VisionConfig {
    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> Self {
        VisionConfig { image_size: 16, embed_dim: 16, base_channels: 4, max_text_len: 12 }
    }
}
