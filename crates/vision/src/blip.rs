//! BLIP-lite: deep multimodal fusion of an image and its caption.
//!
//! The paper forms `C_xg = BLIP(X_i, G_i)` by cross-attending BERT text
//! features over ViT image features. This module reproduces that wiring
//! at small scale: caption tokens (queries) attend over image patch
//! tokens (keys/values) through multi-head cross-attention, and the
//! attended sequence is pooled and projected into the condition space.
//! Its parameters are trained jointly with the diffusion model, exactly
//! as Eq. (6) prescribes for the condition-vector parameters. The
//! cross-attention stack runs on the sharded parallel kernel layer and
//! produces bit-identical fusions at every thread count.

use crate::encoders::{ImageEncoder, TextEncoder};
use crate::VisionConfig;
use aero_nn::layers::{LayerNorm, Linear, MultiHeadAttention};
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// BLIP-lite fusion encoder.
#[derive(Debug, Clone)]
pub struct BlipFusion {
    image_encoder: ImageEncoder,
    text_encoder: TextEncoder,
    cross_attn: MultiHeadAttention,
    norm: LayerNorm,
    proj: Linear,
    config: VisionConfig,
}

impl BlipFusion {
    /// Creates an untrained fusion encoder.
    pub fn new<R: Rng + ?Sized>(vocab: usize, config: VisionConfig, rng: &mut R) -> Self {
        let d = config.embed_dim;
        BlipFusion {
            image_encoder: ImageEncoder::new(config, rng),
            text_encoder: TextEncoder::new(vocab, config, rng),
            cross_attn: MultiHeadAttention::new(d, 2.min(d / 4).max(1), rng),
            norm: LayerNorm::new(d),
            proj: Linear::new(d, d, rng),
            config,
        }
    }

    /// The fused representation `C_xg`: `([n, 3, s, s], tokens) → [n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if batch sizes or geometries mismatch.
    pub fn fuse(&self, images: &Var, tokens: &[Vec<usize>]) -> Var {
        let n = images.shape()[0];
        assert_eq!(n, tokens.len(), "blip fusion batch mismatch");
        let d = self.config.embed_dim;
        let text = self.text_encoder.token_features(tokens); // [n, L, d]
        let patches = self.image_encoder.patch_tokens(images); // [n, g², d]
        let attended = text.add(&self.cross_attn.forward(&text, &patches));
        let len = self.config.max_text_len;
        let pooled = attended.mean_axis_keepdim(1).reshape(&[n, d]);
        let _ = len;
        self.proj.forward(&self.norm.forward(&pooled))
    }

    /// Convenience wrapper over constant (non-trainable) image input.
    pub fn fuse_tensors(&self, images: &Tensor, tokens: &[Vec<usize>]) -> Var {
        self.fuse(&Var::constant(images.clone()), tokens)
    }

    /// The configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }
}

impl Module for BlipFusion {
    fn params(&self) -> Vec<Var> {
        let mut p = self.image_encoder.params();
        p.extend(self.text_encoder.params());
        p.extend(self.cross_attn.params());
        p.extend(self.norm.params());
        p.extend(self.proj.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fusion_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = VisionConfig::tiny();
        let blip = BlipFusion::new(30, cfg, &mut rng);
        let imgs = Tensor::randn(&[2, 3, cfg.image_size, cfg.image_size], &mut rng);
        let toks = vec![vec![1; cfg.max_text_len], vec![2; cfg.max_text_len]];
        assert_eq!(blip.fuse_tensors(&imgs, &toks).shape(), vec![2, cfg.embed_dim]);
    }

    #[test]
    fn fusion_depends_on_both_modalities() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = VisionConfig::tiny();
        let blip = BlipFusion::new(30, cfg, &mut rng);
        let img_a = Tensor::randn(&[1, 3, cfg.image_size, cfg.image_size], &mut rng);
        let img_b = Tensor::randn(&[1, 3, cfg.image_size, cfg.image_size], &mut rng);
        let tok_a = vec![vec![3; cfg.max_text_len]];
        let tok_b = vec![vec![7; cfg.max_text_len]];
        let base = blip.fuse_tensors(&img_a, &tok_a).to_tensor();
        let image_changed = blip.fuse_tensors(&img_b, &tok_a).to_tensor();
        let text_changed = blip.fuse_tensors(&img_a, &tok_b).to_tensor();
        assert!(base.sub(&image_changed).abs().max() > 1e-6, "image must matter");
        assert!(base.sub(&text_changed).abs().max() > 1e-6, "text must matter");
    }

    #[test]
    fn fusion_is_trainable_end_to_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = VisionConfig::tiny();
        let blip = BlipFusion::new(30, cfg, &mut rng);
        let imgs = Tensor::randn(&[1, 3, cfg.image_size, cfg.image_size], &mut rng);
        blip.fuse_tensors(&imgs, &[vec![1; cfg.max_text_len]]).sum().backward();
        // fuse() routes images through the patch head and text through
        // token features, so the two unused pooled-projection heads (image
        // global proj + text sentence proj, 2 params each) are exempt.
        let with_grad = blip.params().iter().filter(|p| p.grad().is_some()).count();
        assert!(
            blip.params().len() - with_grad <= 4,
            "only the unused pooled heads may lack grads ({with_grad}/{})",
            blip.params().len()
        );
    }
}
