//! YOLO-lite: a single-scale grid detector supplying regions of interest.
//!
//! The paper trains YOLO on VisDrone and uses its detections as the ROIs
//! for region-level feature augmentation. This is a faithful miniature:
//! a convolutional backbone maps the image to a `g × g` grid; each cell
//! predicts objectness, a box (centre offset + size, all normalized), and
//! class logits; inference applies a confidence threshold and NMS. The
//! backbone convolutions run on the sharded parallel kernel layer, so
//! detections (and the ROIs downstream) are thread-count invariant.

use crate::VisionConfig;
use aero_nn::layers::Conv2d;
use aero_nn::optim::Adam;
use aero_nn::{Module, Var};
use aero_scene::{Annotation, BBox, ObjectClass};
use aero_tensor::Tensor;
use rand::Rng;

/// Channels per cell: objectness + (dx, dy, w, h) + class logits.
const BOX_FIELDS: usize = 5;

/// A detection produced by [`YoloLite::detect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted class.
    pub class: ObjectClass,
    /// Pixel-space box.
    pub bbox: BBox,
    /// Confidence in `[0, 1]` (objectness × class probability).
    pub confidence: f32,
}

impl Detection {
    /// Converts to an annotation, discarding confidence.
    pub fn to_annotation(&self) -> Annotation {
        Annotation { class: self.class, bbox: self.bbox }
    }
}

/// Single-scale grid detector.
#[derive(Debug, Clone)]
pub struct YoloLite {
    conv1: Conv2d,
    conv2: Conv2d,
    head: Conv2d,
    config: VisionConfig,
}

impl YoloLite {
    /// Creates an untrained detector.
    pub fn new<R: Rng + ?Sized>(config: VisionConfig, rng: &mut R) -> Self {
        let c = config.base_channels;
        let out = BOX_FIELDS + ObjectClass::ALL.len();
        YoloLite {
            conv1: Conv2d::new(3, c, 3, 2, 1, rng),
            conv2: Conv2d::new(c, 2 * c, 3, 2, 1, rng),
            head: Conv2d::new(2 * c, out, 1, 1, 0, rng),
            config,
        }
    }

    /// Grid side length (`image_size / 4`).
    pub fn grid(&self) -> usize {
        self.config.image_size / 4
    }

    fn raw_forward(&self, images: &Var) -> Var {
        let h = self.conv1.forward(images).silu();
        let h = self.conv2.forward(&h).silu();
        self.head.forward(&h) // [n, 5 + classes, g, g]
    }

    /// Builds the per-cell training target `[5 + classes, g, g]` from
    /// ground-truth annotations on an `image_size`² image.
    pub fn build_target(&self, boxes: &[Annotation]) -> Tensor {
        let g = self.grid();
        let s = self.config.image_size as f32;
        let n_class = ObjectClass::ALL.len();
        let mut t = Tensor::zeros(&[BOX_FIELDS + n_class, g, g]);
        for ann in boxes {
            let (cx, cy) = ann.bbox.center();
            let (u, v) = (cx / s, cy / s);
            if !(0.0..1.0).contains(&u) || !(0.0..1.0).contains(&v) {
                continue;
            }
            let gx = ((u * g as f32) as usize).min(g - 1);
            let gy = ((v * g as f32) as usize).min(g - 1);
            let dx = u * g as f32 - gx as f32;
            let dy = v * g as f32 - gy as f32;
            t.set(&[0, gy, gx], 1.0);
            t.set(&[1, gy, gx], dx);
            t.set(&[2, gy, gx], dy);
            t.set(&[3, gy, gx], (ann.bbox.width() / s).clamp(0.0, 1.0));
            t.set(&[4, gy, gx], (ann.bbox.height() / s).clamp(0.0, 1.0));
            for c in 0..n_class {
                t.set(&[BOX_FIELDS + c, gy, gx], 0.0);
            }
            t.set(&[BOX_FIELDS + ann.class.id(), gy, gx], 1.0);
        }
        t
    }

    /// Differentiable detection loss for one batch.
    fn loss(&self, images: &Tensor, targets: &Tensor) -> Var {
        let pred = self.raw_forward(&Var::constant(images.clone()));
        let n_class = ObjectClass::ALL.len();
        let tv = Var::constant(targets.clone());

        let obj_pred = pred.narrow(1, 0, 1).sigmoid();
        let obj_tgt = tv.narrow(1, 0, 1);
        // Positive cells are rare (an object covers one cell out of g²), so a
        // plain MSE is dominated by the easy negatives and objectness never
        // rises above the base rate. Up-weighting positive cells keeps the
        // detector from collapsing to "nothing anywhere".
        let obj_weight = Var::constant(targets.narrow(1, 0, 1).mul_scalar(9.0).add_scalar(1.0));
        let obj_loss = obj_pred.sub(&obj_tgt).powf(2.0).mul(&obj_weight).mean();

        // Positive-cell mask broadcast over box fields and classes. Box and
        // class terms are averaged over *positive* cells only — dividing by
        // n·g² (mostly empty cells) starves localization of gradient signal.
        let n_pos = targets.narrow(1, 0, 1).sum().max(1.0);
        let mask4 = Tensor::concat(&[&targets.narrow(1, 0, 1); 4], 1);
        let box_pred = pred.narrow(1, 1, 4).sigmoid();
        let box_tgt = tv.narrow(1, 1, 4);
        let box_loss =
            box_pred.sub(&box_tgt).mul(&Var::constant(mask4)).powf(2.0).sum().scale(1.0 / n_pos);

        let mask_c = {
            let one = targets.narrow(1, 0, 1);
            let refs: Vec<&Tensor> = std::iter::repeat_n(&one, n_class).collect();
            Tensor::concat(&refs, 1)
        };
        let cls_pred = pred
            .narrow(1, BOX_FIELDS, n_class)
            .permute(&[0, 2, 3, 1])
            .softmax_last_axis()
            .permute(&[0, 3, 1, 2]);
        let cls_tgt = tv.narrow(1, BOX_FIELDS, n_class);
        let cls_loss =
            cls_pred.sub(&cls_tgt).mul(&Var::constant(mask_c)).powf(2.0).sum().scale(1.0 / n_pos);

        obj_loss.scale(2.0).add(&box_loss).add(&cls_loss)
    }

    /// Trains on (image, annotations) pairs; returns per-epoch losses.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        samples: &[(Tensor, Vec<Annotation>)],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.params(), lr);
        let targets: Vec<Tensor> = samples.iter().map(|(_, b)| self.build_target(b)).collect();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(1)) {
                let imgs: Vec<&Tensor> = chunk.iter().map(|&i| &samples[i].0).collect();
                let tgts: Vec<&Tensor> = chunk.iter().map(|&i| &targets[i]).collect();
                let x = Tensor::stack(&imgs);
                let t = Tensor::stack(&tgts);
                opt.zero_grad();
                let loss = self.loss(&x, &t);
                total += loss.value().item();
                batches += 1;
                loss.backward();
                opt.step();
            }
            history.push(if batches > 0 { total / batches as f32 } else { 0.0 });
        }
        history
    }

    /// Runs detection on one `[3, s, s]` image.
    pub fn detect(&self, image: &Tensor, conf_threshold: f32, nms_iou: f32) -> Vec<Detection> {
        let batch = image.reshape(&[1, 3, self.config.image_size, self.config.image_size]);
        let pred = self.raw_forward(&Var::constant(batch)).to_tensor();
        let g = self.grid();
        let s = self.config.image_size as f32;
        let n_class = ObjectClass::ALL.len();
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut dets = Vec::new();
        for gy in 0..g {
            for gx in 0..g {
                let obj = sigmoid(pred.get(&[0, 0, gy, gx]));
                // class softmax
                let logits: Vec<f32> =
                    (0..n_class).map(|c| pred.get(&[0, BOX_FIELDS + c, gy, gx])).collect();
                let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|&l| (l - mx).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let (best_c, best_p) = exps
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, &e)| (i, e / sum))
                    .unwrap_or((0, 0.0));
                let conf = obj * best_p;
                if conf < conf_threshold {
                    continue;
                }
                let dx = sigmoid(pred.get(&[0, 1, gy, gx]));
                let dy = sigmoid(pred.get(&[0, 2, gy, gx]));
                let w = sigmoid(pred.get(&[0, 3, gy, gx])) * s;
                let h = sigmoid(pred.get(&[0, 4, gy, gx])) * s;
                let cx = (gx as f32 + dx) / g as f32 * s;
                let cy = (gy as f32 + dy) / g as f32 * s;
                let bbox = BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
                    .clip(self.config.image_size, self.config.image_size);
                if bbox.is_visible() {
                    dets.push(Detection {
                        class: ObjectClass::from_id(best_c),
                        bbox,
                        confidence: conf,
                    });
                }
            }
        }
        non_max_suppression(dets, nms_iou)
    }

    /// The configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }
}

impl Module for YoloLite {
    fn params(&self) -> Vec<Var> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.head.params());
        p
    }
}

/// Greedy class-agnostic non-max suppression, highest confidence first.
pub fn non_max_suppression(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    dets.sort_by(|a, b| {
        b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Detection> = Vec::new();
    for d in dets {
        if kept.iter().all(|k| k.bbox.iou(&d.bbox) < iou_threshold) {
            kept.push(d);
        }
    }
    kept
}

/// Precision/recall of detections against ground truth at an IoU
/// threshold (greedy one-to-one matching).
pub fn detection_pr(
    detections: &[Detection],
    truth: &[Annotation],
    iou_threshold: f32,
) -> (f32, f32) {
    let mut matched = vec![false; truth.len()];
    let mut tp = 0usize;
    for d in detections {
        let best = truth
            .iter()
            .enumerate()
            .filter(|(i, t)| !matched[*i] && t.class == d.class)
            .map(|(i, t)| (i, t.bbox.iou(&d.bbox)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((i, iou)) = best {
            if iou >= iou_threshold {
                matched[i] = true;
                tp += 1;
            }
        }
    }
    let precision = if detections.is_empty() { 0.0 } else { tp as f32 / detections.len() as f32 };
    let recall = if truth.is_empty() { 1.0 } else { tp as f32 / truth.len() as f32 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_scene::{DatasetConfig, SceneGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn target_encoding_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = VisionConfig::tiny(); // 16px, grid 4
        let det = YoloLite::new(cfg, &mut rng);
        let ann = Annotation { class: ObjectClass::Car, bbox: BBox::new(4.0, 4.0, 8.0, 6.0) };
        let t = det.build_target(&[ann]);
        // centre (6, 5) -> cell (1, 1)
        assert_eq!(t.get(&[0, 1, 1]), 1.0);
        assert_eq!(t.get(&[BOX_FIELDS + ObjectClass::Car.id(), 1, 1]), 1.0);
        assert!((t.get(&[3, 1, 1]) - 4.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn nms_removes_duplicates() {
        let mk = |x: f32, conf: f32| Detection {
            class: ObjectClass::Car,
            bbox: BBox::new(x, 0.0, x + 4.0, 4.0),
            confidence: conf,
        };
        let kept = non_max_suppression(vec![mk(0.0, 0.9), mk(0.5, 0.8), mk(10.0, 0.7)], 0.3);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].confidence, 0.9);
    }

    #[test]
    fn training_reduces_loss_and_finds_objects() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = VisionConfig::tiny();
        let ds = aero_scene::build_dataset(&DatasetConfig {
            n_scenes: 10,
            image_size: cfg.image_size,
            seed: 7,
            generator: SceneGeneratorConfig {
                min_objects: 5,
                max_objects: 12,
                night_probability: 0.0,
            },
        });
        let samples: Vec<(Tensor, Vec<Annotation>)> = ds
            .iter()
            .map(|item| (item.rendered.image.to_tensor(), item.rendered.boxes.clone()))
            .collect();
        let mut det = YoloLite::new(cfg, &mut rng);
        let history = det.train(&samples, 15, 5, 5e-3, &mut rng);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss should fall: {history:?}"
        );
        // a trained detector should fire somewhere on a training image
        let dets = det.detect(&samples[0].0, 0.05, 0.4);
        assert!(!dets.is_empty(), "expected at least one detection");
    }

    #[test]
    fn detection_pr_perfect_match() {
        let truth =
            vec![Annotation { class: ObjectClass::Car, bbox: BBox::new(0.0, 0.0, 4.0, 4.0) }];
        let dets = vec![Detection {
            class: ObjectClass::Car,
            bbox: BBox::new(0.0, 0.0, 4.0, 4.0),
            confidence: 0.9,
        }];
        let (p, r) = detection_pr(&dets, &truth, 0.5);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn detection_pr_class_mismatch_is_fp() {
        let truth =
            vec![Annotation { class: ObjectClass::Car, bbox: BBox::new(0.0, 0.0, 4.0, 4.0) }];
        let dets = vec![Detection {
            class: ObjectClass::Bus,
            bbox: BBox::new(0.0, 0.0, 4.0, 4.0),
            confidence: 0.9,
        }];
        let (p, r) = detection_pr(&dets, &truth, 0.5);
        assert_eq!((p, r), (0.0, 0.0));
    }

    #[test]
    fn empty_inputs_are_safe() {
        let (p, r) = detection_pr(&[], &[], 0.5);
        assert_eq!((p, r), (0.0, 1.0));
        assert!(non_max_suppression(vec![], 0.5).is_empty());
    }
}
