//! Image and text encoders shared by CLIP-lite and BLIP-lite.

use crate::VisionConfig;
use aero_nn::layers::{Conv2d, Embedding, LayerNorm, Linear, MultiHeadAttention};
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// A small convolutional image encoder.
///
/// Two stride-2 convolutions (ViT-patchifier stand-in) produce a grid of
/// patch features; a projection head pools them into one embedding.
#[derive(Debug, Clone)]
pub struct ImageEncoder {
    conv1: Conv2d,
    conv2: Conv2d,
    proj: Linear,
    patch_proj: Linear,
    config: VisionConfig,
}

impl ImageEncoder {
    /// Creates an encoder for the configured geometry.
    pub fn new<R: Rng + ?Sized>(config: VisionConfig, rng: &mut R) -> Self {
        let c = config.base_channels;
        let grid = config.image_size / 4;
        ImageEncoder {
            conv1: Conv2d::new(3, c, 3, 2, 1, rng),
            conv2: Conv2d::new(c, 2 * c, 3, 2, 1, rng),
            proj: Linear::new(2 * c * grid * grid, config.embed_dim, rng),
            patch_proj: Linear::new(2 * c, config.embed_dim, rng),
            config,
        }
    }

    /// The feature-grid side length (`image_size / 4`).
    pub fn grid(&self) -> usize {
        self.config.image_size / 4
    }

    /// Global embedding of a batch: `[n, 3, s, s] → [n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if the input geometry does not match the configuration.
    pub fn embed(&self, images: &Var) -> Var {
        let shape = images.shape();
        assert_eq!(shape[1], 3, "image encoder expects RGB input");
        assert_eq!(shape[2], self.config.image_size, "image size mismatch");
        let n = shape[0];
        let h = self.conv1.forward(images).silu();
        let h = self.conv2.forward(&h).silu();
        let grid = self.grid();
        let flat = h.reshape(&[n, 2 * self.config.base_channels * grid * grid]);
        self.proj.forward(&flat)
    }

    /// Patch-token features of a batch: `[n, 3, s, s] → [n, g², d]`.
    ///
    /// These play the role of ViT patch embeddings inside BLIP fusion and
    /// of the region features `f_{X_i,r}` in the augmentation module.
    ///
    /// # Panics
    ///
    /// Panics if the input geometry does not match the configuration.
    pub fn patch_tokens(&self, images: &Var) -> Var {
        let n = images.shape()[0];
        let h = self.conv1.forward(images).silu();
        let h = self.conv2.forward(&h).silu();
        let grid = self.grid();
        let c = 2 * self.config.base_channels;
        // [n, c, g, g] -> [n, g*g, c]
        let tokens = h.reshape(&[n, c, grid * grid]).permute(&[0, 2, 1]);
        let flat = tokens.reshape(&[n * grid * grid, c]);
        self.patch_proj.forward(&flat).reshape(&[n, grid * grid, self.config.embed_dim])
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }
}

impl Module for ImageEncoder {
    fn params(&self) -> Vec<Var> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.proj.params());
        p.extend(self.patch_proj.params());
        p
    }
}

/// A small transformer text encoder (BERT-lite / CLIP-text-lite).
#[derive(Debug, Clone)]
pub struct TextEncoder {
    embedding: Embedding,
    positional: Var,
    attn: MultiHeadAttention,
    norm1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    norm2: LayerNorm,
    proj: Linear,
    config: VisionConfig,
}

impl TextEncoder {
    /// Creates an encoder over a vocabulary of `vocab` entries.
    pub fn new<R: Rng + ?Sized>(vocab: usize, config: VisionConfig, rng: &mut R) -> Self {
        let d = config.embed_dim;
        TextEncoder {
            embedding: Embedding::new(vocab, d, rng),
            positional: Var::parameter(
                Tensor::randn(&[config.max_text_len, d], rng).mul_scalar(0.02),
            ),
            attn: MultiHeadAttention::new(d, 2.min(d / 4).max(1), rng),
            norm1: LayerNorm::new(d),
            ff1: Linear::new(d, 2 * d, rng),
            ff2: Linear::new(2 * d, d, rng),
            norm2: LayerNorm::new(d),
            proj: Linear::new(d, d, rng),
            config,
        }
    }

    /// Token-level features: batch of id sequences → `[n, len, d]`.
    ///
    /// # Panics
    ///
    /// Panics if any sequence length differs from `max_text_len`.
    pub fn token_features(&self, batch: &[Vec<usize>]) -> Var {
        let len = self.config.max_text_len;
        let n = batch.len();
        let mut flat_ids = Vec::with_capacity(n * len);
        for seq in batch {
            assert_eq!(seq.len(), len, "sequence length must equal max_text_len");
            flat_ids.extend_from_slice(seq);
        }
        let d = self.config.embed_dim;
        let emb = self.embedding.forward(&flat_ids).reshape(&[n, len, d]);
        let x = emb.add(&self.positional);
        // Pre-norm transformer block.
        let normed = self.norm_tokens(&self.norm1, &x, n, len, d);
        let attended = x.add(&self.attn.forward(&normed, &normed));
        let normed2 = self.norm_tokens(&self.norm2, &attended, n, len, d);
        let ff = self
            .ff2
            .forward(&self.ff1.forward(&normed2.reshape(&[n * len, d])).gelu())
            .reshape(&[n, len, d]);
        attended.add(&ff)
    }

    fn norm_tokens(&self, norm: &LayerNorm, x: &Var, n: usize, len: usize, d: usize) -> Var {
        norm.forward(&x.reshape(&[n * len, d])).reshape(&[n, len, d])
    }

    /// Pooled sentence embedding: batch of id sequences → `[n, d]`.
    pub fn embed(&self, batch: &[Vec<usize>]) -> Var {
        let n = batch.len();
        let len = self.config.max_text_len;
        let d = self.config.embed_dim;
        let tokens = self.token_features(batch);
        let pooled = tokens.mean_axis_keepdim(1).reshape(&[n, d]);
        let _ = len;
        self.proj.forward(&pooled)
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }
}

impl Module for TextEncoder {
    fn params(&self) -> Vec<Var> {
        let mut p = self.embedding.params();
        p.push(self.positional.clone());
        p.extend(self.attn.params());
        p.extend(self.norm1.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p.extend(self.norm2.params());
        p.extend(self.proj.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn image_embed_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = VisionConfig::tiny();
        let enc = ImageEncoder::new(cfg, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 3, 16, 16], &mut rng));
        assert_eq!(enc.embed(&x).shape(), vec![2, cfg.embed_dim]);
        assert_eq!(enc.patch_tokens(&x).shape(), vec![2, 16, cfg.embed_dim]);
    }

    #[test]
    fn text_embed_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = VisionConfig::tiny();
        let enc = TextEncoder::new(50, cfg, &mut rng);
        let batch = vec![vec![1usize; cfg.max_text_len], vec![2usize; cfg.max_text_len]];
        assert_eq!(enc.embed(&batch).shape(), vec![2, cfg.embed_dim]);
        assert_eq!(enc.token_features(&batch).shape(), vec![2, cfg.max_text_len, cfg.embed_dim]);
    }

    #[test]
    fn different_tokens_give_different_embeddings() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = VisionConfig::tiny();
        let enc = TextEncoder::new(50, cfg, &mut rng);
        let a = enc.embed(&[vec![5usize; cfg.max_text_len]]).to_tensor();
        let b = enc.embed(&[vec![9usize; cfg.max_text_len]]).to_tensor();
        assert!(a.sub(&b).abs().max() > 1e-6);
    }

    #[test]
    fn encoders_expose_all_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = VisionConfig::tiny();
        let img = ImageEncoder::new(cfg, &mut rng);
        let txt = TextEncoder::new(30, cfg, &mut rng);
        assert!(img.param_count() > 0);
        assert!(txt.param_count() > 0);
        // gradients reach every parameter
        let x = Var::constant(Tensor::randn(&[1, 3, 16, 16], &mut rng));
        // embed() exercises the global head, patch_tokens() the patch head;
        // together they must reach every parameter.
        img.embed(&x).sum().add(&img.patch_tokens(&x).sum()).backward();
        for p in img.params() {
            assert!(p.grad().is_some(), "image encoder param missing grad");
        }
        let loss = txt.embed(&[vec![1usize; cfg.max_text_len]]).sum();
        loss.backward();
        for p in txt.params() {
            assert!(p.grad().is_some(), "text encoder param missing grad");
        }
    }
}
