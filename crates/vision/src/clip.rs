//! CLIP-lite: a contrastively trained joint text–image embedding space.
//!
//! The paper uses pretrained CLIP both to encode the target description
//! `G'_i` into the condition branch `C_g` and to compute the CLIP-score
//! metric. No checkpoint is available here, so this model is trained from
//! scratch with the symmetric InfoNCE objective on our paired synthetic
//! dataset. Both encoders run on the sharded parallel kernel layer, so
//! embeddings (and hence CLIP scores) do not vary with the thread count.

use crate::encoders::{ImageEncoder, TextEncoder};
use crate::VisionConfig;
use aero_nn::optim::Adam;
use aero_nn::{Module, Var};
use aero_tensor::Tensor;
use rand::Rng;

/// A paired training example: image tensor `[3, s, s]` + token ids.
#[derive(Debug, Clone)]
pub struct ClipPair {
    /// The image, channel-major.
    pub image: Tensor,
    /// Fixed-length token ids of its caption.
    pub tokens: Vec<usize>,
}

/// CLIP-lite model.
#[derive(Debug, Clone)]
pub struct ClipModel {
    image_encoder: ImageEncoder,
    text_encoder: TextEncoder,
    logit_scale: f32,
    config: VisionConfig,
}

impl ClipModel {
    /// Creates an untrained model.
    pub fn new<R: Rng + ?Sized>(vocab: usize, config: VisionConfig, rng: &mut R) -> Self {
        ClipModel {
            image_encoder: ImageEncoder::new(config, rng),
            text_encoder: TextEncoder::new(vocab, config, rng),
            logit_scale: 10.0,
            config,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }

    /// The image tower (shared with BLIP fusion and region augmentation).
    pub fn image_encoder(&self) -> &ImageEncoder {
        &self.image_encoder
    }

    /// The text tower.
    pub fn text_encoder(&self) -> &TextEncoder {
        &self.text_encoder
    }

    /// L2-normalized image embeddings `[n, d]` (no gradient).
    ///
    /// # Panics
    ///
    /// Panics if `images` is not `[n, 3, s, s]` with the configured size.
    pub fn encode_image(&self, images: &Tensor) -> Tensor {
        let v = self.image_encoder.embed(&Var::constant(images.clone()));
        normalize_rows(&v.to_tensor())
    }

    /// L2-normalized text embeddings `[n, d]` (no gradient).
    pub fn encode_text(&self, batch: &[Vec<usize>]) -> Tensor {
        let v = self.text_encoder.embed(batch);
        normalize_rows(&v.to_tensor())
    }

    /// CLIP score of (image, caption): `100 · cos(image, text)` averaged
    /// over the batch — the metric reported in Table II.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes differ.
    pub fn clip_score(&self, images: &Tensor, batch: &[Vec<usize>]) -> f32 {
        let img = self.encode_image(images);
        let txt = self.encode_text(batch);
        assert_eq!(img.shape()[0], txt.shape()[0], "clip_score batch mismatch");
        let n = img.shape()[0];
        let d = img.shape()[1];
        let mut acc = 0.0;
        for i in 0..n {
            let a = img.narrow(0, i, 1).reshape(&[d]);
            let b = txt.narrow(0, i, 1).reshape(&[d]);
            acc += a.dot(&b);
        }
        100.0 * acc / n as f32
    }

    /// One symmetric InfoNCE loss over a batch (differentiable).
    fn contrastive_loss(&self, images: &Tensor, batch: &[Vec<usize>]) -> Var {
        let n = batch.len();
        let img = self.image_encoder.embed(&Var::constant(images.clone()));
        let txt = self.text_encoder.embed(batch);
        let img_n = normalize_rows_var(&img);
        let txt_n = normalize_rows_var(&txt);
        let logits = img_n.matmul(&txt_n.permute(&[1, 0])).scale(self.logit_scale); // [n, n]
        let targets = Tensor::eye(n);
        let loss_i = cross_entropy_rows(&logits, &targets);
        let loss_t = cross_entropy_rows(&logits.permute(&[1, 0]), &targets);
        loss_i.add(&loss_t).scale(0.5)
    }

    /// Trains with InfoNCE over shuffled mini-batches.
    ///
    /// Returns per-epoch mean losses (useful for convergence asserts).
    pub fn train_contrastive<R: Rng + ?Sized>(
        &mut self,
        pairs: &[ClipPair],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut params = self.image_encoder.params();
        params.extend(self.text_encoder.params());
        let mut opt = Adam::new(params, lr);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..epochs {
            // Fisher-Yates shuffle with the caller's RNG.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(2)) {
                if chunk.len() < 2 {
                    continue; // contrastive loss needs negatives
                }
                let images: Vec<Tensor> = chunk.iter().map(|&i| pairs[i].image.clone()).collect();
                let refs: Vec<&Tensor> = images.iter().collect();
                let image_batch = Tensor::stack(&refs);
                let tokens: Vec<Vec<usize>> =
                    chunk.iter().map(|&i| pairs[i].tokens.clone()).collect();
                opt.zero_grad();
                let loss = self.contrastive_loss(&image_batch, &tokens);
                epoch_loss += loss.value().item();
                batches += 1;
                loss.backward();
                opt.step();
            }
            history.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
        }
        history
    }
}

impl Module for ClipModel {
    fn params(&self) -> Vec<Var> {
        let mut p = self.image_encoder.params();
        p.extend(self.text_encoder.params());
        p
    }
}

/// Row-wise L2 normalization of a `[n, d]` tensor.
fn normalize_rows(x: &Tensor) -> Tensor {
    let (n, d) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    for i in 0..n {
        let row = &mut out.as_mut_slice()[i * d..(i + 1) * d];
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
        for v in row {
            *v /= norm;
        }
    }
    out
}

/// Differentiable row-wise L2 normalization.
fn normalize_rows_var(x: &Var) -> Var {
    let sq = x.mul(x).sum_axis_keepdim(1).add_scalar(1e-8).sqrt();
    x.div(&sq)
}

/// Mean cross-entropy of row-softmax logits against one-hot targets.
fn cross_entropy_rows(logits: &Var, targets: &Tensor) -> Var {
    let n = logits.shape()[0] as f32;
    let probs = logits.softmax_last_axis().add_scalar(1e-9);
    probs.ln().mul(&Var::constant(targets.clone())).sum().scale(-1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_pairs(n: usize, cfg: VisionConfig, rng: &mut StdRng) -> Vec<ClipPair> {
        // Each pair couples a distinctly colored image with a distinct
        // token pattern so contrastive learning has signal.
        (0..n)
            .map(|i| {
                let mut img = Tensor::zeros(&[3, cfg.image_size, cfg.image_size]);
                let plane = cfg.image_size * cfg.image_size;
                let c = i % 3;
                for v in &mut img.as_mut_slice()[c * plane..(c + 1) * plane] {
                    *v = 0.8;
                }
                // small noise
                let noise =
                    Tensor::randn(&[3, cfg.image_size, cfg.image_size], rng).mul_scalar(0.05);
                let image = img.add(&noise).clamp(0.0, 1.0);
                let tokens = vec![4 + c; cfg.max_text_len];
                ClipPair { image, tokens }
            })
            .collect()
    }

    #[test]
    fn contrastive_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = VisionConfig::tiny();
        let mut model = ClipModel::new(20, cfg, &mut rng);
        let pairs = toy_pairs(12, cfg, &mut rng);
        let history = model.train_contrastive(&pairs, 6, 6, 5e-3, &mut rng);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss should fall: {history:?}"
        );
    }

    #[test]
    fn trained_clip_aligns_matching_pairs() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = VisionConfig::tiny();
        let mut model = ClipModel::new(20, cfg, &mut rng);
        let pairs = toy_pairs(12, cfg, &mut rng);
        model.train_contrastive(&pairs, 12, 6, 5e-3, &mut rng);
        // matched caption should score higher than a mismatched one
        let img = pairs[0].image.reshape(&[1, 3, cfg.image_size, cfg.image_size]);
        let matched = model.clip_score(&img, &[pairs[0].tokens.clone()]);
        let mismatched = model.clip_score(&img, &[pairs[1].tokens.clone()]);
        assert!(matched > mismatched, "matched {matched} vs mismatched {mismatched}");
    }

    #[test]
    fn embeddings_are_normalized() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = VisionConfig::tiny();
        let model = ClipModel::new(20, cfg, &mut rng);
        let img = Tensor::randn(&[3, 3, cfg.image_size, cfg.image_size], &mut rng);
        let e = model.encode_image(&img);
        for i in 0..3 {
            let norm = e.narrow(0, i, 1).norm();
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        }
    }

    #[test]
    fn clip_score_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = VisionConfig::tiny();
        let model = ClipModel::new(20, cfg, &mut rng);
        let img = Tensor::rand_uniform(&[2, 3, cfg.image_size, cfg.image_size], 0.0, 1.0, &mut rng);
        let score = model.clip_score(&img, &[vec![1; cfg.max_text_len], vec![2; cfg.max_text_len]]);
        assert!((-100.0..=100.0).contains(&score));
    }

    #[test]
    fn cross_entropy_prefers_correct_diagonal() {
        let good = Var::constant(Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0], &[2, 2]));
        let bad = Var::constant(Tensor::from_vec(vec![-5.0, 5.0, 5.0, -5.0], &[2, 2]));
        let t = Tensor::eye(2);
        assert!(
            cross_entropy_rows(&good, &t).value().item()
                < cross_entropy_rows(&bad, &t).value().item()
        );
    }
}
