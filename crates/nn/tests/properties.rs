//! Property-based tests for autograd invariants, including the parallel
//! backward paths: the sharded tensor kernels run inside every layer's
//! forward *and* backward, so finite-difference checks under a multi-
//! thread policy validate the parallel gradients end to end.

use aero_nn::gradcheck::{check_gradient, check_gradient_with_threads};
use aero_nn::layers::{Conv2d, Linear, MultiHeadAttention};
use aero_nn::{optim::Adam, Module, Var};
use aero_tensor::parallel::with_threads;
use aero_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sum_gradient_is_ones(seed in 0u64..500, n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::parameter(Tensor::randn(&[n], &mut rng));
        x.sum().backward();
        let g = x.grad().unwrap();
        prop_assert!(g.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn linearity_of_gradients(seed in 0u64..500, a in -3.0f32..3.0) {
        // d(a·sum(x))/dx = a
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::parameter(Tensor::randn(&[4], &mut rng));
        x.sum().scale(a).backward();
        let g = x.grad().unwrap();
        prop_assert!(g.as_slice().iter().all(|&v| (v - a).abs() < 1e-5));
    }

    #[test]
    fn gradcheck_random_composites(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn(&[2, 3], &mut rng);
        let report = check_gradient(
            |x| x.silu().mul(&x.sigmoid()).sum().add(&x.tanh().mean()),
            &x0,
            1e-3,
            6,
        );
        prop_assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn softmax_then_sum_has_zero_gradient(seed in 0u64..300) {
        // sum(softmax(x)) == rows, constant -> gradient must vanish
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::parameter(Tensor::randn(&[2, 4], &mut rng));
        x.softmax_last_axis().sum().backward();
        let g = x.grad().unwrap();
        prop_assert!(g.abs().max() < 1e-5, "grad {:?}", g.as_slice());
    }

    #[test]
    fn adam_descends_on_convex_bowl(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Var::parameter(Tensor::randn(&[3], &mut rng).mul_scalar(3.0));
        let start = p.value().powf(2.0).sum();
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..60 {
            opt.zero_grad();
            p.mul(&p).sum().backward();
            opt.step();
        }
        let end = p.value().powf(2.0).sum();
        prop_assert!(end < start, "{start} -> {end}");
    }

    #[test]
    fn detach_blocks_all_gradient(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::parameter(Tensor::randn(&[4], &mut rng));
        x.detach().powf(2.0).sum().backward();
        prop_assert!(x.grad().is_none());
    }

    #[test]
    fn linear_parallel_backward_passes_gradcheck(seed in 0u64..100, threads in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(5, 4, &mut rng);
        let x0 = Tensor::randn(&[3, 5], &mut rng);
        let report = check_gradient_with_threads(
            |x| layer.forward(x).tanh().mean(),
            &x0,
            1e-3,
            8,
            threads,
        );
        prop_assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn conv2d_parallel_backward_passes_gradcheck(seed in 0u64..100, threads in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x0 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let report = check_gradient_with_threads(
            |x| layer.forward(x).tanh().mean(),
            &x0,
            1e-3,
            8,
            threads,
        );
        prop_assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn attention_parallel_backward_passes_gradcheck(seed in 0u64..100, threads in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x0 = Tensor::randn(&[1, 3, 4], &mut rng);
        let report = check_gradient_with_threads(
            |x| attn.forward(x, x).mean(),
            &x0,
            1e-3,
            8,
            threads,
        );
        prop_assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn layer_gradients_are_bit_identical_across_thread_counts(seed in 0u64..100) {
        // Forward AND backward through Linear, Conv2d, and attention
        // must produce byte-for-byte identical gradients no matter how
        // wide the kernel pool fans out.
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(6, 5, &mut rng);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x_lin = Tensor::randn(&[4, 6], &mut rng);
        let x_conv = Tensor::randn(&[2, 2, 6, 6], &mut rng);
        let x_attn = Tensor::randn(&[1, 4, 4], &mut rng);
        let collect = |x: &Var, params: &[Var], out: &mut Vec<Vec<u32>>| {
            let g = x.grad().expect("input grad");
            out.push(g.as_slice().iter().map(|v| v.to_bits()).collect());
            for p in params {
                let pg = p.grad().expect("param grad");
                out.push(pg.as_slice().iter().map(|v| v.to_bits()).collect());
                p.zero_grad();
            }
        };
        let grads = |threads: usize| -> Vec<Vec<u32>> {
            with_threads(threads, || {
                let mut out = Vec::new();
                let x = Var::parameter(x_lin.clone());
                lin.forward(&x).tanh().sum().backward();
                collect(&x, &lin.params(), &mut out);
                let x = Var::parameter(x_conv.clone());
                conv.forward(&x).tanh().sum().backward();
                collect(&x, &conv.params(), &mut out);
                let x = Var::parameter(x_attn.clone());
                attn.forward(&x, &x).tanh().sum().backward();
                collect(&x, &attn.params(), &mut out);
                out
            })
        };
        let reference = grads(1);
        for threads in [2, 4, 8] {
            prop_assert_eq!(&grads(threads), &reference, "grads diverged at {} threads", threads);
        }
    }

    #[test]
    fn serialization_round_trip_any_shapes(dims in prop::collection::vec(1usize..5, 1..4), seed in 0u64..300) {
        use aero_nn::serialize::{decode_tensors, encode_params, load_into_params};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Var::parameter(Tensor::randn(&dims, &mut rng));
        let blob = encode_params(std::slice::from_ref(&p));
        let q = Var::parameter(Tensor::zeros(&dims));
        load_into_params(std::slice::from_ref(&q), decode_tensors(&blob).unwrap()).unwrap();
        prop_assert_eq!(p.to_tensor(), q.to_tensor());
    }
}
