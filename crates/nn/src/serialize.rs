//! Binary weight serialization.
//!
//! Weights are stored as a flat, ordered list of tensors — the same order
//! [`crate::Module::params`] yields — in a small self-describing
//! little-endian format:
//!
//! ```text
//! magic "AERO" | u32 version | u32 tensor_count
//! per tensor: u32 rank | u32 dims[rank] | f32 data[numel]
//! ```

use crate::autograd::Var;
use aero_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"AERO";
const VERSION: u32 = 1;

/// Error returned when decoding a weight blob fails.
#[derive(Debug)]
pub enum LoadWeightsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The blob is malformed or truncated.
    Corrupt(String),
    /// The stored tensors do not match the module's parameters.
    Mismatch(String),
}

impl fmt::Display for LoadWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadWeightsError::Io(e) => write!(f, "i/o failure: {e}"),
            LoadWeightsError::Corrupt(d) => write!(f, "corrupt weight blob: {d}"),
            LoadWeightsError::Mismatch(d) => write!(f, "weight/parameter mismatch: {d}"),
        }
    }
}

impl Error for LoadWeightsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadWeightsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadWeightsError {
    fn from(e: io::Error) -> Self {
        LoadWeightsError::Io(e)
    }
}

/// Encodes parameters into the binary weight format.
pub fn encode_params(params: &[Var]) -> Bytes {
    let tensors: Vec<Tensor> = params.iter().map(Var::to_tensor).collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    encode_tensors(&refs)
}

/// Encodes raw tensors into the same binary format [`encode_params`]
/// writes — used for optimizer moments and other non-parameter state
/// that checkpoints must carry.
pub fn encode_tensors(tensors: &[&Tensor]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(tensors.len() as u32);
    for t in tensors {
        buf.put_u32_le(t.rank() as u32);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.as_slice() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a weight blob into raw tensors.
///
/// # Errors
///
/// Returns [`LoadWeightsError::Corrupt`] on malformed input.
pub fn decode_tensors(mut blob: &[u8]) -> Result<Vec<Tensor>, LoadWeightsError> {
    if blob.len() < 12 || &blob[..4] != MAGIC {
        return Err(LoadWeightsError::Corrupt("missing magic header".into()));
    }
    blob.advance(4);
    let version = blob.get_u32_le();
    if version != VERSION {
        return Err(LoadWeightsError::Corrupt(format!("unsupported version {version}")));
    }
    let count = blob.get_u32_le() as usize;
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        if blob.remaining() < 4 {
            return Err(LoadWeightsError::Corrupt(format!("truncated before tensor {i}")));
        }
        let rank = blob.get_u32_le() as usize;
        if blob.remaining() < rank * 4 {
            return Err(LoadWeightsError::Corrupt(format!("truncated dims of tensor {i}")));
        }
        let shape: Vec<usize> = (0..rank).map(|_| blob.get_u32_le() as usize).collect();
        let numel: usize = shape.iter().product();
        if blob.remaining() < numel * 4 {
            return Err(LoadWeightsError::Corrupt(format!("truncated data of tensor {i}")));
        }
        let data: Vec<f32> = (0..numel).map(|_| blob.get_f32_le()).collect();
        tensors.push(
            Tensor::try_from_vec(data, &shape)
                .map_err(|e| LoadWeightsError::Corrupt(e.to_string()))?,
        );
    }
    Ok(tensors)
}

/// Loads decoded tensors into parameters, checking shapes.
///
/// # Errors
///
/// Returns [`LoadWeightsError::Mismatch`] if counts or shapes differ.
pub fn load_into_params(params: &[Var], tensors: Vec<Tensor>) -> Result<(), LoadWeightsError> {
    if params.len() != tensors.len() {
        return Err(LoadWeightsError::Mismatch(format!(
            "expected {} tensors, blob holds {}",
            params.len(),
            tensors.len()
        )));
    }
    for (i, (p, t)) in params.iter().zip(&tensors).enumerate() {
        if p.shape() != t.shape() {
            return Err(LoadWeightsError::Mismatch(format!(
                "tensor {i} shape {:?} does not match parameter shape {:?}",
                t.shape(),
                p.shape()
            )));
        }
    }
    for (p, t) in params.iter().zip(tensors) {
        p.assign(t);
    }
    Ok(())
}

/// Writes parameters to a file; a convenience over [`encode_params`].
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn save_params<P: AsRef<Path>>(params: &[Var], path: P) -> Result<(), LoadWeightsError> {
    fs::write(path, encode_params(params))?;
    Ok(())
}

/// Reads parameters from a file written by [`save_params`].
///
/// # Errors
///
/// Propagates I/O failures and decode errors.
pub fn load_params<P: AsRef<Path>>(params: &[Var], path: P) -> Result<(), LoadWeightsError> {
    let blob = fs::read(path)?;
    load_into_params(params, decode_tensors(&blob)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_values() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
        let b = Var::parameter(Tensor::randn(&[7], &mut rng));
        let blob = encode_params(&[a.clone(), b.clone()]);
        let a2 = Var::parameter(Tensor::zeros(&[3, 4]));
        let b2 = Var::parameter(Tensor::zeros(&[7]));
        load_into_params(&[a2.clone(), b2.clone()], decode_tensors(&blob).unwrap()).unwrap();
        assert_eq!(*a.value(), *a2.value());
        assert_eq!(*b.value(), *b2.value());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(decode_tensors(b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00").is_err());
    }

    #[test]
    fn rejects_truncated_blob() {
        let p = Var::parameter(Tensor::ones(&[4]));
        let blob = encode_params(&[p]);
        assert!(decode_tensors(&blob[..blob.len() - 3]).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let p = Var::parameter(Tensor::ones(&[4]));
        let blob = encode_params(&[p]);
        let q = Var::parameter(Tensor::ones(&[5]));
        let res = load_into_params(&[q], decode_tensors(&blob).unwrap());
        assert!(matches!(res, Err(LoadWeightsError::Mismatch(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("aero_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.aero");
        let p = Var::parameter(Tensor::from_vec(vec![1.5, -2.5], &[2]));
        save_params(std::slice::from_ref(&p), &path).unwrap();
        let q = Var::parameter(Tensor::zeros(&[2]));
        load_params(std::slice::from_ref(&q), &path).unwrap();
        assert_eq!(*p.value(), *q.value());
        let _ = std::fs::remove_file(path);
    }
}
