//! Finite-difference gradient checking used by the test suites.

use crate::autograd::Var;
use aero_tensor::Tensor;

/// Outcome of a gradient check: the largest relative error observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error across all checked coordinates.
    pub max_rel_error: f32,
    /// Number of coordinates compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed under a tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compares the analytic gradient of `f` at `x0` against central finite
/// differences on up to `max_coords` coordinates.
///
/// `f` must rebuild the graph from a fresh parameter each call and return
/// a scalar loss `Var`.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar or produces no gradient.
pub fn check_gradient<F>(f: F, x0: &Tensor, eps: f32, max_coords: usize) -> GradCheckReport
where
    F: Fn(&Var) -> Var,
{
    let x = Var::parameter(x0.clone());
    let loss = f(&x);
    loss.backward();
    let analytic = x.grad().expect("loss must depend on x");

    let n = x0.numel().min(max_coords);
    // Spread checked coordinates across the tensor.
    let stride = (x0.numel() / n.max(1)).max(1);
    let mut max_rel = 0.0f32;
    let mut checked = 0;
    for k in 0..n {
        let i = (k * stride).min(x0.numel() - 1);
        let mut plus = x0.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x0.clone();
        minus.as_mut_slice()[i] -= eps;
        let fp = f(&Var::constant(plus)).value().item();
        let fm = f(&Var::constant(minus)).value().item();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let denom = a.abs().max(numeric.abs()).max(1e-3);
        let rel = (a - numeric).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
        }
        checked += 1;
    }
    GradCheckReport { max_rel_error: max_rel, checked }
}

/// [`check_gradient`] with the tensor kernels pinned to `threads`
/// workers for both the analytic backward pass and every finite-
/// difference forward evaluation.
///
/// The sharded kernels are bit-identical at any thread count, so this
/// must report exactly the same error as the serial check — the
/// parallel-backward tests assert that, which turns every gradcheck
/// into a determinism check for the backward kernels too.
pub fn check_gradient_with_threads<F>(
    f: F,
    x0: &Tensor,
    eps: f32,
    max_coords: usize,
    threads: usize,
) -> GradCheckReport
where
    F: Fn(&Var) -> Var,
{
    aero_tensor::parallel::with_threads(threads, || check_gradient(f, x0, eps, max_coords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn passes_for_simple_composite() {
        let mut rng = StdRng::seed_from_u64(31);
        let x0 = Tensor::randn(&[3, 3], &mut rng);
        let report = check_gradient(|x| x.tanh().mul(x).mean(), &x0, 1e-3, 9);
        assert!(report.passes(1e-2), "max rel err {}", report.max_rel_error);
        assert_eq!(report.checked, 9);
    }

    #[test]
    fn threaded_check_reports_identical_error() {
        let mut rng = StdRng::seed_from_u64(32);
        let x0 = Tensor::randn(&[4, 4], &mut rng);
        let f = |x: &Var| x.tanh().mul(x).mean();
        let serial = check_gradient_with_threads(f, &x0, 1e-3, 8, 1);
        for threads in [2, 4, 8] {
            let par = check_gradient_with_threads(f, &x0, 1e-3, 8, threads);
            assert_eq!(
                par.max_rel_error.to_bits(),
                serial.max_rel_error.to_bits(),
                "gradcheck diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn detects_wrong_gradient() {
        // A "loss" whose graph-side gradient is cut by detach will not
        // match finite differences of the true function.
        let x0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let report = check_gradient(
            |x| x.detach().mul(x).sum(), // analytic grad misses one factor
            &x0,
            1e-3,
            2,
        );
        assert!(!report.passes(1e-2));
    }
}
