//! Reverse-mode automatic differentiation and neural-network building
//! blocks for the AeroDiffusion reproduction.
//!
//! The centrepiece is [`Var`], a shared handle to a node in a dynamically
//! built computation graph. Every differentiable operation records a
//! backward closure; calling [`Var::backward`] on a scalar loss walks the
//! graph in reverse topological order and accumulates gradients into the
//! leaf parameters, which [`optim::Adam`] then updates.
//!
//! On top of the autograd core the crate provides the layers the paper's
//! models are assembled from — [`layers::Linear`], [`layers::Conv2d`],
//! [`layers::ConvTranspose2d`], [`layers::Embedding`],
//! [`layers::LayerNorm`], [`layers::GroupNorm`], and
//! [`layers::MultiHeadAttention`] — plus weight (de)serialization and a
//! finite-difference gradient checker used throughout the test suite.
//!
//! # Example
//!
//! ```
//! use aero_nn::Var;
//! use aero_tensor::Tensor;
//!
//! let x = Var::parameter(Tensor::from_vec(vec![2.0], &[1]));
//! let loss = x.mul(&x).sum(); // d(x²)/dx = 2x = 4
//! loss.backward();
//! assert_eq!(x.grad().expect("gradient").as_slice(), &[4.0]);
//! ```

mod autograd;
pub mod gradcheck;
pub mod init;
pub mod integrity;
pub mod layers;
pub mod optim;
pub mod serialize;

pub use aero_tensor::sym::{Dim, ShapeSpec};
pub use autograd::Var;

/// Trait for anything that owns trainable parameters.
///
/// Implementors return their parameters in a stable order so that
/// optimizers and the weight serializer agree on the layout.
pub trait Module {
    /// All trainable parameters, in a stable deterministic order.
    fn params(&self) -> Vec<Var>;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.value().numel()).sum()
    }

    /// Zeroes the gradient of every parameter.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// A short human-readable description of the module's geometry, used
    /// by `aero-analysis` diagnostics (e.g. `"Linear(64 -> 32)"`).
    fn describe(&self) -> String {
        "<module>".to_string()
    }

    /// Symbolic output shape of the module's primary forward pass for a
    /// symbolic input shape (the static shape-inference hook consumed by
    /// `aero-analysis`).
    ///
    /// The default declines inference; layers with well-defined unary
    /// forward geometry override it. Modules with multi-input forwards
    /// (e.g. cross-attention) document which input the spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`](aero_tensor::TensorError) when the input
    /// spec is inconsistent with the module's geometry, or when the module
    /// does not support static inference.
    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        Err(aero_tensor::TensorError::DimensionMismatch {
            detail: format!(
                "{} does not support static shape inference (input {input})",
                self.describe()
            ),
        })
    }
}
