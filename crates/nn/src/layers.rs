//! Neural-network layers assembled from autograd primitives.
//!
//! Every layer owns its parameters as [`Var`]s and implements [`Module`]
//! so optimizers and the serializer can reach them in a stable order.

use crate::autograd::Var;
use crate::init;
use crate::Module;
use aero_tensor::sym::{self, Dim, ShapeSpec};
use aero_tensor::Tensor;
use rand::Rng;

/// Fully connected layer: `y = x W + b` with `W: [in, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Var,
    bias: Var,
}

impl Linear {
    /// Creates a linear layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: Var::parameter(init::he_normal(&[in_dim, out_dim], in_dim, rng)),
            bias: Var::parameter(Tensor::zeros(&[out_dim])),
        }
    }

    /// Creates a linear layer with small-std normal weights (for output
    /// projections and modulation heads that should start near zero).
    pub fn new_with_init<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        std: f32,
        rng: &mut R,
    ) -> Self {
        Linear {
            weight: Var::parameter(init::scaled_normal(&[in_dim, out_dim], std, rng)),
            bias: Var::parameter(Tensor::zeros(&[out_dim])),
        }
    }

    /// Applies the layer to `[n, in]` (or flattens a leading batch of any
    /// rank-2 input).
    ///
    /// # Panics
    ///
    /// Panics unless `x` is rank-2 with matching inner dimension.
    pub fn forward(&self, x: &Var) -> Var {
        x.matmul(&self.weight).add(&self.bias)
    }

    /// The weight parameter (`[in, out]`).
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias parameter (`[out]`).
    pub fn bias(&self) -> &Var {
        &self.bias
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn describe(&self) -> String {
        let w = self.weight.shape();
        format!("Linear({} -> {})", w[0], w[1])
    }

    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        sym::sym_matmul(input, &ShapeSpec::fixed(&self.weight.shape()))
    }
}

/// 2-D convolution layer.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Var,
    bias: Var,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights (`[cout, cin, k, k]`).
    pub fn new<R: Rng + ?Sized>(
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = cin * k * k;
        Conv2d {
            weight: Var::parameter(init::he_normal(&[cout, cin, k, k], fan_in, rng)),
            bias: Var::parameter(Tensor::zeros(&[cout])),
            stride,
            pad,
        }
    }

    /// Applies the convolution to `[n, cin, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics on channel mismatch.
    pub fn forward(&self, x: &Var) -> Var {
        x.conv2d(&self.weight, Some(&self.bias), self.stride, self.pad)
    }
}

impl Module for Conv2d {
    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn describe(&self) -> String {
        let w = self.weight.shape();
        format!(
            "Conv2d({} -> {}, k={}, stride={}, pad={})",
            w[1], w[0], w[2], self.stride, self.pad
        )
    }

    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        sym::sym_conv2d(input, &self.weight.shape(), self.stride, self.pad)
    }
}

/// Transposed 2-D convolution layer (upsampling).
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    weight: Var,
    bias: Var,
    stride: usize,
    pad: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed-conv layer with weights `[cin, cout, k, k]`.
    pub fn new<R: Rng + ?Sized>(
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = cin * k * k;
        ConvTranspose2d {
            weight: Var::parameter(init::he_normal(&[cin, cout, k, k], fan_in, rng)),
            bias: Var::parameter(Tensor::zeros(&[cout])),
            stride,
            pad,
        }
    }

    /// Applies the transposed convolution to `[n, cin, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics on channel mismatch.
    pub fn forward(&self, x: &Var) -> Var {
        x.conv_transpose2d(&self.weight, Some(&self.bias), self.stride, self.pad)
    }
}

impl Module for ConvTranspose2d {
    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn describe(&self) -> String {
        let w = self.weight.shape();
        format!(
            "ConvTranspose2d({} -> {}, k={}, stride={}, pad={})",
            w[0], w[1], w[2], self.stride, self.pad
        )
    }

    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        sym::sym_conv_transpose2d(input, &self.weight.shape(), self.stride, self.pad)
    }
}

/// Token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Var,
    dim: usize,
}

impl Embedding {
    /// Creates a `[vocab, dim]` embedding with N(0, 0.02) entries.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Embedding { table: Var::parameter(init::scaled_normal(&[vocab, dim], 0.02, rng)), dim }
    }

    /// Looks up token ids, producing `[len, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Var {
        self.table.index_select0(ids)
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.shape()[0]
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Var> {
        vec![self.table.clone()]
    }

    fn describe(&self) -> String {
        format!("Embedding(vocab={}, dim={})", self.vocab(), self.dim)
    }

    /// Input spec is the id-sequence shape `[len]`; output is `[len, dim]`.
    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        if input.rank() != 1 {
            return Err(aero_tensor::TensorError::DimensionMismatch {
                detail: format!("{} expects a rank-1 id list, got {input}", self.describe()),
            });
        }
        Ok(ShapeSpec::new(vec![input.dims()[0].clone(), Dim::Fixed(self.dim)]))
    }
}

/// Layer normalization over the last axis.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over a final axis of size `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Var::parameter(Tensor::ones(&[dim])),
            beta: Var::parameter(Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Normalizes the last axis to zero mean / unit variance, then applies
    /// the learned affine transform.
    ///
    /// # Panics
    ///
    /// Panics if the last axis does not match the layer's dimension.
    pub fn forward(&self, x: &Var) -> Var {
        let last_axis = x.shape().len() - 1;
        assert_eq!(x.shape()[last_axis], self.gamma.shape()[0], "layer norm dimension mismatch");
        let mean = x.mean_axis_keepdim(last_axis);
        let centered = x.sub(&mean);
        let var = centered.mul(&centered).mean_axis_keepdim(last_axis);
        let norm = centered.div(&var.add_scalar(self.eps).sqrt());
        norm.mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn describe(&self) -> String {
        format!("LayerNorm(dim={})", self.gamma.shape()[0])
    }

    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        let dim = self.gamma.shape()[0];
        let ok =
            input.rank() >= 1 && sym::dim_eq(&input.dims()[input.rank() - 1], &Dim::Fixed(dim));
        if !ok {
            return Err(aero_tensor::TensorError::DimensionMismatch {
                detail: format!(
                    "{} expects a trailing axis of {dim}, got {input}",
                    self.describe()
                ),
            });
        }
        Ok(input.clone())
    }
}

/// Group normalization over `[n, c, h, w]` feature maps.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    gamma: Var,
    beta: Var,
    groups: usize,
    eps: f32,
}

impl GroupNorm {
    /// Creates a group norm with `groups` groups over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` divides `channels`.
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(channels.is_multiple_of(groups), "groups must divide channels");
        GroupNorm {
            gamma: Var::parameter(Tensor::ones(&[1, channels, 1, 1])),
            beta: Var::parameter(Tensor::zeros(&[1, channels, 1, 1])),
            groups,
            eps: 1e-5,
        }
    }

    /// Normalizes each group of channels per sample.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is `[n, c, h, w]` with the configured channels.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "group norm expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.gamma.shape()[1], "group norm channel mismatch");
        let g = self.groups;
        let grouped = x.reshape(&[n, g, (c / g) * h * w]);
        let mean = grouped.mean_axis_keepdim(2);
        let centered = grouped.sub(&mean);
        let var = centered.mul(&centered).mean_axis_keepdim(2);
        let norm = centered.div(&var.add_scalar(self.eps).sqrt());
        norm.reshape(&[n, c, h, w]).mul(&self.gamma).add(&self.beta)
    }
}

impl Module for GroupNorm {
    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn describe(&self) -> String {
        format!("GroupNorm(groups={}, channels={})", self.groups, self.gamma.shape()[1])
    }

    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        let channels = self.gamma.shape()[1];
        let ok = input.rank() == 4 && sym::dim_eq(&input.dims()[1], &Dim::Fixed(channels));
        if !ok {
            return Err(aero_tensor::TensorError::DimensionMismatch {
                detail: format!("{} expects [n, {channels}, h, w], got {input}", self.describe()),
            });
        }
        Ok(input.clone())
    }
}

/// Multi-head attention over `[batch, tokens, dim]` sequences.
///
/// Implements Eq. (2)–(3) of the paper: Q, K, V are learned linear
/// projections of the inputs, attention is
/// `softmax(QKᵀ/√d_k)V` per head, and heads are concatenated through an
/// output projection. Pass the same tensor for `query` and `key_value`
/// for self-attention, different tensors for cross-attention.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics unless `heads` divides `dim`.
    pub fn new<R: Rng + ?Sized>(dim: usize, heads: usize, rng: &mut R) -> Self {
        assert!(dim.is_multiple_of(heads), "heads must divide dim");
        MultiHeadAttention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Attends `query` (`[b, tq, dim]`) over `key_value` (`[b, tk, dim]`).
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn forward(&self, query: &Var, key_value: &Var) -> Var {
        let qs = query.shape();
        let ks = key_value.shape();
        assert_eq!(qs.len(), 3, "attention expects [b, t, d] query");
        assert_eq!(ks.len(), 3, "attention expects [b, t, d] key/value");
        assert_eq!(qs[0], ks[0], "attention batch mismatch");
        assert_eq!(qs[2], self.dim, "attention dim mismatch");
        assert_eq!(ks[2], self.dim, "attention dim mismatch");
        let (b, tq, tk) = (qs[0], qs[1], ks[1]);
        let (h, dh) = (self.heads, self.dim / self.heads);

        let q = self.wq.forward(&query.reshape(&[b * tq, self.dim]));
        let k = self.wk.forward(&key_value.reshape(&[b * tk, self.dim]));
        let v = self.wv.forward(&key_value.reshape(&[b * tk, self.dim]));

        // [b, t, h, dh] -> [b, h, t, dh] -> [b*h, t, dh]
        let split = |x: &Var, t: usize| -> Var {
            x.reshape(&[b, t, h, dh]).permute(&[0, 2, 1, 3]).reshape(&[b * h, t, dh])
        };
        let qh = split(&q, tq);
        let kh = split(&k, tk);
        let vh = split(&v, tk);

        let scale = 1.0 / (dh as f32).sqrt();
        let scores = qh.bmm(&kh.permute(&[0, 2, 1])).scale(scale); // [b*h, tq, tk]
        let attn = scores.softmax_last_axis();
        let ctx = attn.bmm(&vh); // [b*h, tq, dh]
        let merged =
            ctx.reshape(&[b, h, tq, dh]).permute(&[0, 2, 1, 3]).reshape(&[b * tq, self.dim]);
        self.wo.forward(&merged).reshape(&[b, tq, self.dim])
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Var> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }

    fn describe(&self) -> String {
        format!("MultiHeadAttention(dim={}, heads={})", self.dim, self.heads)
    }

    /// Input spec is the query `[b, t, dim]` (self-attention geometry);
    /// output matches the query shape.
    fn infer_shape(&self, input: &ShapeSpec) -> aero_tensor::Result<ShapeSpec> {
        let ok = input.rank() == 3 && sym::dim_eq(&input.dims()[2], &Dim::Fixed(self.dim));
        if !ok {
            return Err(aero_tensor::TensorError::DimensionMismatch {
                detail: format!("{} expects [b, t, {}], got {input}", self.describe(), self.dim),
            });
        }
        Ok(input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_training_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 4], &mut rng));
        let y = layer.forward(&x);
        assert_eq!(y.shape(), vec![2, 3]);
        y.sum().backward();
        assert!(layer.weight().grad().is_some());
        assert!(layer.bias().grad().is_some());
        assert_eq!(layer.param_count(), 4 * 3 + 3);
    }

    #[test]
    fn conv2d_layer_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 3, 8, 8], &mut rng));
        let y = layer.forward(&x);
        assert_eq!(y.shape(), vec![1, 8, 4, 4]);
    }

    #[test]
    fn conv_transpose_layer_upsamples() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = ConvTranspose2d::new(8, 4, 2, 2, 0, &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 8, 4, 4], &mut rng));
        assert_eq!(layer.forward(&x).shape(), vec![1, 4, 8, 8]);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut rng = StdRng::seed_from_u64(4);
        let emb = Embedding::new(10, 6, &mut rng);
        let out = emb.forward(&[1, 5, 1]);
        assert_eq!(out.shape(), vec![3, 6]);
        out.sum().backward();
        let g = emb.params()[0].grad().unwrap();
        // row 1 used twice, row 5 once, others zero
        assert_eq!(g.get(&[1, 0]), 2.0);
        assert_eq!(g.get(&[5, 0]), 1.0);
        assert_eq!(g.get(&[0, 0]), 0.0);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(5);
        let ln = LayerNorm::new(8);
        let x = Var::constant(Tensor::randn(&[4, 8], &mut rng).mul_scalar(5.0).add_scalar(3.0));
        let y = ln.forward(&x).to_tensor();
        for row in y.as_slice().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn group_norm_normalizes_groups() {
        let mut rng = StdRng::seed_from_u64(6);
        let gn = GroupNorm::new(2, 4);
        let x = Var::constant(Tensor::randn(&[2, 4, 3, 3], &mut rng).mul_scalar(7.0));
        let y = gn.forward(&x).to_tensor();
        // each (sample, group) block of 2*9=18 values should be normalized
        let data = y.as_slice();
        for s in 0..2 {
            for g in 0..2 {
                let mut vals = Vec::new();
                for c in 0..2 {
                    let ch = g * 2 + c;
                    for i in 0..9 {
                        vals.push(data[(s * 4 + ch) * 9 + i]);
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / 18.0;
                let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 18.0;
                assert!(mean.abs() < 1e-4);
                assert!((var - 1.0).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn attention_output_shape_and_rowsum() {
        let mut rng = StdRng::seed_from_u64(7);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let q = Var::constant(Tensor::randn(&[2, 3, 8], &mut rng));
        let kv = Var::constant(Tensor::randn(&[2, 5, 8], &mut rng));
        let out = attn.forward(&q, &kv);
        assert_eq!(out.shape(), vec![2, 3, 8]);
    }

    #[test]
    fn self_attention_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(8);
        let attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Var::parameter(Tensor::randn(&[1, 3, 4], &mut rng));
        attn.forward(&x, &x).sum().backward();
        assert!(x.grad().is_some());
        for p in attn.params() {
            assert!(p.grad().is_some(), "all attention params should receive grads");
        }
    }

    #[test]
    fn cross_attention_distinguishes_sources() {
        // With orthogonal key content, attending to a kv sequence whose
        // values differ must change the output.
        let mut rng = StdRng::seed_from_u64(9);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let q = Var::constant(Tensor::randn(&[1, 2, 4], &mut rng));
        let kv1 = Var::constant(Tensor::randn(&[1, 3, 4], &mut rng));
        let kv2 = Var::constant(Tensor::randn(&[1, 3, 4], &mut rng));
        let o1 = attn.forward(&q, &kv1).to_tensor();
        let o2 = attn.forward(&q, &kv2).to_tensor();
        assert!(o1.sub(&o2).abs().max() > 1e-6);
    }

    #[test]
    fn infer_shape_agrees_with_runtime_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        let lin = Linear::new(6, 10, &mut rng);
        let conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let tconv = ConvTranspose2d::new(8, 4, 2, 2, 0, &mut rng);
        let gn = GroupNorm::new(2, 8);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);

        let x = Var::constant(Tensor::randn(&[2, 6], &mut rng));
        assert_eq!(
            lin.infer_shape(&ShapeSpec::fixed(&[2, 6])).unwrap().as_fixed().unwrap(),
            lin.forward(&x).shape()
        );
        let img = Var::constant(Tensor::randn(&[2, 3, 8, 8], &mut rng));
        let conv_out = conv.forward(&img);
        assert_eq!(
            conv.infer_shape(&ShapeSpec::fixed(&[2, 3, 8, 8])).unwrap().as_fixed().unwrap(),
            conv_out.shape()
        );
        assert_eq!(
            tconv.infer_shape(&ShapeSpec::fixed(&conv_out.shape())).unwrap().as_fixed().unwrap(),
            tconv.forward(&conv_out).shape()
        );
        assert_eq!(
            gn.infer_shape(&ShapeSpec::fixed(&conv_out.shape())).unwrap().as_fixed().unwrap(),
            gn.forward(&conv_out).shape()
        );
        let tok = Var::constant(Tensor::randn(&[2, 5, 8], &mut rng));
        assert_eq!(
            attn.infer_shape(&ShapeSpec::fixed(&[2, 5, 8])).unwrap().as_fixed().unwrap(),
            attn.forward(&tok, &tok).shape()
        );
        // Symbolic batch flows through, and geometry violations surface.
        let sym_out = conv.infer_shape(&ShapeSpec::batched("B", &[3, 8, 8])).unwrap();
        assert_eq!(sym_out, ShapeSpec::batched("B", &[8, 4, 4]));
        assert!(lin.infer_shape(&ShapeSpec::batched("B", &[7])).is_err());
        assert!(gn.infer_shape(&ShapeSpec::batched("B", &[5, 4, 4])).is_err());
    }
}
