//! On-disk integrity primitives shared by every persistence layer.
//!
//! Three building blocks keep saved state trustworthy without any
//! external dependency:
//!
//! - [`crc32`] — a hand-rolled CRC-32 (IEEE 802.3, reflected) over a
//!   compile-time table, so a bit flip anywhere in a blob is detected;
//! - [`write_atomic`] — tmp-file-plus-rename writes, so a crash mid-save
//!   never leaves a half-written file under the final name;
//! - [`Manifest`] — a `manifest.txt` format recording a format version
//!   and the CRC32 + length of every blob in a directory, verified
//!   before anything is decoded.
//!
//! `aerodiffusion::persist` (model directories) and
//! `aero_diffusion::checkpoint` (training checkpoints) both build on
//! these, so corruption surfaces as one typed [`IntegrityError`] instead
//! of a garbage model.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// The CRC-32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320),
/// generated at compile time — no runtime init, no network, no deps.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Writes `bytes` to `path` crash-safely: the data lands in a sibling
/// `.tmp` file first and is renamed over the final name only once fully
/// written, so readers never observe a truncated file.
///
/// # Errors
///
/// Propagates I/O failures from the write or the rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Why a manifest failed to parse or verify.
#[derive(Debug)]
pub enum IntegrityError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The manifest text itself is malformed or truncated.
    Malformed(String),
    /// The manifest was written by an unsupported format version.
    VersionMismatch {
        /// The version recorded in the manifest.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A blob listed in the manifest fails its checksum or length.
    Corrupt {
        /// The file that failed verification.
        file: String,
        /// What exactly mismatched.
        detail: String,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::Io(e) => write!(f, "i/o failure: {e}"),
            IntegrityError::Malformed(d) => write!(f, "malformed manifest: {d}"),
            IntegrityError::VersionMismatch { found, supported } => {
                write!(f, "manifest version {found} unsupported (this build reads {supported})")
            }
            IntegrityError::Corrupt { file, detail } => {
                write!(f, "corrupt blob {file}: {detail}")
            }
        }
    }
}

impl Error for IntegrityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IntegrityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IntegrityError {
    fn from(e: io::Error) -> Self {
        IntegrityError::Io(e)
    }
}

/// One blob recorded in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the manifest's directory.
    pub name: String,
    /// CRC-32 of the file's bytes.
    pub crc32: u32,
    /// File length in bytes.
    pub len: u64,
}

/// A directory manifest: format version plus per-blob checksums.
///
/// The text form is line-oriented and order-preserving:
///
/// ```text
/// version=1
/// <crc32 hex8> <len> <name>
/// …
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The format version the directory was written with.
    pub version: u32,
    /// One entry per verified blob.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Builds a manifest over named files in `dir` by hashing each one.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reading any listed file.
    pub fn for_files(dir: &Path, names: &[&str]) -> Result<Self, IntegrityError> {
        let mut entries = Vec::with_capacity(names.len());
        for name in names {
            let bytes = fs::read(dir.join(name))?;
            entries.push(ManifestEntry {
                name: (*name).to_string(),
                crc32: crc32(&bytes),
                len: bytes.len() as u64,
            });
        }
        Ok(Manifest { version: MANIFEST_VERSION, entries })
    }

    /// Renders the line-oriented text form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("version={}\n", self.version);
        for e in &self.entries {
            out.push_str(&format!("{:08x} {} {}\n", e.crc32, e.len, e.name));
        }
        out
    }

    /// Parses the text form, validating structure but not blob contents.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Malformed`] on a missing/garbled version line or a
    /// truncated entry line; [`IntegrityError::VersionMismatch`] when the
    /// recorded version is not the one this build reads.
    pub fn parse(text: &str) -> Result<Self, IntegrityError> {
        let mut lines = text.lines();
        let version_line =
            lines.next().ok_or_else(|| IntegrityError::Malformed("empty manifest".into()))?;
        let version: u32 = version_line
            .strip_prefix("version=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                IntegrityError::Malformed(format!(
                    "first line must be version=<n>, got {version_line:?}"
                ))
            })?;
        if version != MANIFEST_VERSION {
            return Err(IntegrityError::VersionMismatch {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (crc, len, name) = (parts.next(), parts.next(), parts.next());
            let entry = match (crc, len, name) {
                (Some(c), Some(l), Some(n)) if !n.is_empty() => {
                    let crc32 = u32::from_str_radix(c, 16).map_err(|_| {
                        IntegrityError::Malformed(format!("bad checksum field in {line:?}"))
                    })?;
                    let len = l.parse().map_err(|_| {
                        IntegrityError::Malformed(format!("bad length field in {line:?}"))
                    })?;
                    ManifestEntry { name: n.to_string(), crc32, len }
                }
                _ => {
                    return Err(IntegrityError::Malformed(format!(
                        "truncated manifest entry {line:?}"
                    )))
                }
            };
            entries.push(entry);
        }
        Ok(Manifest { version, entries })
    }

    /// Reads and parses `dir/manifest.txt`.
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`Manifest::parse`] rejects.
    pub fn read(dir: &Path) -> Result<Self, IntegrityError> {
        Self::parse(&fs::read_to_string(dir.join("manifest.txt"))?)
    }

    /// Writes `dir/manifest.txt` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, dir: &Path) -> Result<(), IntegrityError> {
        write_atomic(&dir.join("manifest.txt"), self.render().as_bytes())?;
        Ok(())
    }

    /// Verifies every listed blob in `dir` against its recorded length
    /// and checksum.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Corrupt`] naming the first blob whose bytes do
    /// not match; [`IntegrityError::Io`] if a listed blob is unreadable.
    pub fn verify_dir(&self, dir: &Path) -> Result<(), IntegrityError> {
        for e in &self.entries {
            let bytes = fs::read(dir.join(&e.name))?;
            if bytes.len() as u64 != e.len {
                return Err(IntegrityError::Corrupt {
                    file: e.name.clone(),
                    detail: format!("length {} != recorded {}", bytes.len(), e.len),
                });
            }
            let got = crc32(&bytes);
            if got != e.crc32 {
                return Err(IntegrityError::Corrupt {
                    file: e.name.clone(),
                    detail: format!("crc32 {:08x} != recorded {:08x}", got, e.crc32),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_vector() {
        // The canonical IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_a_single_bit_flip() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn write_atomic_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("aero_nn_integrity_atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert!(!dir.join("blob.bin.tmp").exists(), "tmp file must be renamed away");
    }

    #[test]
    fn manifest_round_trips_and_verifies() {
        let dir = std::env::temp_dir().join("aero_nn_integrity_manifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.bin"), b"alpha").unwrap();
        fs::write(dir.join("b.bin"), b"beta").unwrap();
        let m = Manifest::for_files(&dir, &["a.bin", "b.bin"]).unwrap();
        m.write(&dir).unwrap();
        let back = Manifest::read(&dir).unwrap();
        assert_eq!(back, m);
        back.verify_dir(&dir).unwrap();
    }

    #[test]
    fn verify_catches_a_flipped_bit() {
        let dir = std::env::temp_dir().join("aero_nn_integrity_flip");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("w.bin"), b"weights-weights-weights").unwrap();
        let m = Manifest::for_files(&dir, &["w.bin"]).unwrap();
        let mut bytes = fs::read(dir.join("w.bin")).unwrap();
        bytes[3] ^= 0x10;
        fs::write(dir.join("w.bin"), bytes).unwrap();
        match m.verify_dir(&dir) {
            Err(IntegrityError::Corrupt { file, .. }) => assert_eq!(file, "w.bin"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_truncation_and_bad_versions() {
        assert!(matches!(Manifest::parse(""), Err(IntegrityError::Malformed(_))));
        assert!(matches!(Manifest::parse("garbage\n"), Err(IntegrityError::Malformed(_))));
        assert!(matches!(
            Manifest::parse("version=1\ndeadbeef 12"),
            Err(IntegrityError::Malformed(_))
        ));
        assert!(matches!(
            Manifest::parse("version=99\n"),
            Err(IntegrityError::VersionMismatch { found: 99, supported: MANIFEST_VERSION })
        ));
    }
}
