//! Optimizers.
//!
//! The paper trains with Adam (learning rate 1e-5, weight decay 1e-5);
//! [`Adam`] implements that with decoupled weight decay (AdamW-style) so
//! the decay setting matches the reference configuration.

use crate::autograd::Var;
use aero_tensor::Tensor;

/// Adam optimizer with optional decoupled weight decay.
///
/// # Example
///
/// ```
/// use aero_nn::{optim::Adam, Var};
/// use aero_tensor::Tensor;
///
/// let p = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
/// let mut opt = Adam::new(vec![p.clone()], 0.1);
/// for _ in 0..100 {
///     p.zero_grad();
///     p.mul(&p).sum().backward();
///     opt.step();
/// }
/// assert!(p.value().item().abs() < 0.5);
/// ```
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with default betas `(0.9, 0.999)` and no weight decay.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, step: 0, m, v }
    }

    /// Sets decoupled weight decay (the paper uses `1e-5`).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the exponential-decay rates for the moment estimates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients currently stored on the
    /// parameters. Parameters without a gradient are skipped.
    pub fn step(&mut self) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2) = (self.beta1, self.beta2);
            for ((mv, vv), g) in
                m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()).zip(grad.as_slice())
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
            }
            let mut value = p.to_tensor();
            let lr = self.lr;
            let eps = self.eps;
            let wd = self.weight_decay;
            for ((x, mv), vv) in value.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *x -= lr * (mhat / (vhat.sqrt() + eps) + wd * *x);
            }
            p.assign(value);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let p = Var::parameter(Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..200 {
            opt.zero_grad();
            let loss = p.mul(&p).sum();
            loss.backward();
            opt.step();
        }
        assert!(p.value().abs().max() < 0.1);
    }

    #[test]
    fn skips_params_without_grad() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let before = p.value().item();
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        opt.step();
        assert_eq!(p.value().item(), before);
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        let p = Var::parameter(Tensor::from_vec(vec![10.0], &[1]));
        let q = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(vec![p.clone(), q.clone()], 0.01).with_weight_decay(0.5);
        for _ in 0..50 {
            opt.zero_grad();
            // loss depends only on q; p should still decay
            q.mul(&q).sum().backward();
            // give p a zero-ish grad so it participates
            p.scale(0.0).sum().backward();
            opt.step();
        }
        assert!(p.value().item() < 10.0, "weight decay should shrink p");
    }

    #[test]
    fn lr_schedule_is_settable() {
        let p = Var::parameter(Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p], 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }
}
