//! Optimizers.
//!
//! The paper trains with Adam (learning rate 1e-5, weight decay 1e-5);
//! [`Adam`] implements that with decoupled weight decay (AdamW-style) so
//! the decay setting matches the reference configuration.

use crate::autograd::Var;
use crate::serialize::{decode_tensors, encode_tensors, LoadWeightsError};
use aero_tensor::Tensor;

/// A serializable snapshot of Adam's adaptive state: the bias-correction
/// step counter and both moment estimates, in parameter order.
///
/// Restoring this (plus the parameter values themselves) continues
/// training bit-identically — the checkpoint/resume contract.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Number of updates applied so far (drives bias correction).
    pub step: u64,
    /// First-moment estimates, one per parameter.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, one per parameter.
    pub v: Vec<Tensor>,
}

impl AdamState {
    /// Encodes the moments as one weight blob (`m` tensors then `v`
    /// tensors); the step counter travels separately in checkpoint
    /// metadata.
    #[must_use]
    pub fn moments_bytes(&self) -> Vec<u8> {
        let refs: Vec<&Tensor> = self.m.iter().chain(self.v.iter()).collect();
        encode_tensors(&refs).to_vec()
    }

    /// Rebuilds the state from [`AdamState::moments_bytes`] output plus
    /// the externally stored step counter.
    ///
    /// # Errors
    ///
    /// [`LoadWeightsError::Corrupt`] on a malformed blob,
    /// [`LoadWeightsError::Mismatch`] when the blob does not hold an even
    /// number of tensors.
    pub fn from_moments_bytes(blob: &[u8], step: u64) -> Result<Self, LoadWeightsError> {
        let mut tensors = decode_tensors(blob)?;
        if tensors.len() % 2 != 0 {
            return Err(LoadWeightsError::Mismatch(format!(
                "adam moment blob holds {} tensors, expected an even count",
                tensors.len()
            )));
        }
        let v = tensors.split_off(tensors.len() / 2);
        Ok(AdamState { step, m: tensors, v })
    }
}

/// Adam optimizer with optional decoupled weight decay.
///
/// # Example
///
/// ```
/// use aero_nn::{optim::Adam, Var};
/// use aero_tensor::Tensor;
///
/// let p = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
/// let mut opt = Adam::new(vec![p.clone()], 0.1);
/// for _ in 0..100 {
///     p.zero_grad();
///     p.mul(&p).sum().backward();
///     opt.step();
/// }
/// assert!(p.value().item().abs() < 0.5);
/// ```
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with default betas `(0.9, 0.999)` and no weight decay.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, step: 0, m, v }
    }

    /// Sets decoupled weight decay (the paper uses `1e-5`).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the exponential-decay rates for the moment estimates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients currently stored on the
    /// parameters. Parameters without a gradient are skipped.
    pub fn step(&mut self) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2) = (self.beta1, self.beta2);
            for ((mv, vv), g) in
                m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()).zip(grad.as_slice())
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
            }
            let mut value = p.to_tensor();
            let lr = self.lr;
            let eps = self.eps;
            let wd = self.weight_decay;
            for ((x, mv), vv) in value.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *x -= lr * (mhat / (vhat.sqrt() + eps) + wd * *x);
            }
            p.assign(value);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// The parameters this optimizer updates, in registration order.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Snapshots the adaptive state for checkpointing or rollback.
    pub fn export_state(&self) -> AdamState {
        AdamState { step: self.step, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores state captured by [`Adam::export_state`], continuing the
    /// update sequence bit-identically.
    ///
    /// # Errors
    ///
    /// [`LoadWeightsError::Mismatch`] when the moment count or any moment
    /// shape disagrees with this optimizer's parameters; the optimizer is
    /// left untouched on error.
    pub fn restore_state(&mut self, state: AdamState) -> Result<(), LoadWeightsError> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(LoadWeightsError::Mismatch(format!(
                "adam state holds {}+{} moments for {} parameters",
                state.m.len(),
                state.v.len(),
                self.params.len()
            )));
        }
        for (i, p) in self.params.iter().enumerate() {
            let shape = p.shape();
            if state.m[i].shape() != shape || state.v[i].shape() != shape {
                return Err(LoadWeightsError::Mismatch(format!(
                    "adam moment {i} shape {:?}/{:?} does not match parameter shape {shape:?}",
                    state.m[i].shape(),
                    state.v[i].shape()
                )));
            }
        }
        self.step = state.step;
        self.m = state.m;
        self.v = state.v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let p = Var::parameter(Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..200 {
            opt.zero_grad();
            let loss = p.mul(&p).sum();
            loss.backward();
            opt.step();
        }
        assert!(p.value().abs().max() < 0.1);
    }

    #[test]
    fn skips_params_without_grad() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let before = p.value().item();
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        opt.step();
        assert_eq!(p.value().item(), before);
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        let p = Var::parameter(Tensor::from_vec(vec![10.0], &[1]));
        let q = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(vec![p.clone(), q.clone()], 0.01).with_weight_decay(0.5);
        for _ in 0..50 {
            opt.zero_grad();
            // loss depends only on q; p should still decay
            q.mul(&q).sum().backward();
            // give p a zero-ish grad so it participates
            p.scale(0.0).sum().backward();
            opt.step();
        }
        assert!(p.value().item() < 10.0, "weight decay should shrink p");
    }

    #[test]
    fn lr_schedule_is_settable() {
        let p = Var::parameter(Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p], 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }

    /// The checkpoint contract: restoring exported state (through the
    /// byte codec) continues training on the exact same trajectory, bit
    /// for bit, as never having stopped.
    #[test]
    fn state_round_trip_continues_training_bit_identically() {
        let quad_step = |p: &Var, opt: &mut Adam| {
            opt.zero_grad();
            p.mul(p).sum().backward();
            opt.step();
        };
        let p = Var::parameter(Tensor::from_vec(vec![3.0, -1.5, 0.25], &[3]));
        let mut opt = Adam::new(vec![p.clone()], 0.07).with_weight_decay(1e-3);
        for _ in 0..17 {
            quad_step(&p, &mut opt);
        }
        let saved_params = p.to_tensor();
        let state = opt.export_state();
        let blob = state.moments_bytes();
        let saved_step = state.step;

        // Reference: the uninterrupted run.
        for _ in 0..25 {
            quad_step(&p, &mut opt);
        }
        let reference = p.to_tensor();

        // Resumed: fresh parameter + optimizer, state restored from bytes.
        let q = Var::parameter(saved_params);
        let mut opt2 = Adam::new(vec![q.clone()], 0.07).with_weight_decay(1e-3);
        opt2.restore_state(AdamState::from_moments_bytes(&blob, saved_step).unwrap()).unwrap();
        for _ in 0..25 {
            quad_step(&q, &mut opt2);
        }
        assert_eq!(
            reference.as_slice(),
            q.to_tensor().as_slice(),
            "resumed trajectory must be bit-identical"
        );
    }

    #[test]
    fn restore_rejects_mismatched_state() {
        let p = Var::parameter(Tensor::zeros(&[2]));
        let mut opt = Adam::new(vec![p], 0.1);
        let bad = AdamState { step: 1, m: vec![Tensor::zeros(&[3])], v: vec![Tensor::zeros(&[3])] };
        assert!(opt.restore_state(bad).is_err());
        let empty = AdamState { step: 1, m: Vec::new(), v: Vec::new() };
        assert!(opt.restore_state(empty).is_err());
    }
}
