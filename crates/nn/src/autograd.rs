//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Var`] is a cheap, clonable handle (`Rc<RefCell<…>>`) to a node in a
//! dynamically constructed computation graph. Differentiable operations
//! return new `Var`s that remember their parents and a backward closure;
//! [`Var::backward`] runs the closures in reverse topological order.
//!
//! The graph is single-threaded by design (training here is small-scale
//! and deterministic); data parallelism, where used, happens across
//! independent graphs.

use aero_tensor::Tensor;
use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    id: usize,
    /// Name of the operation that produced this node (`"parameter"`,
    /// `"constant"`, `"detach"`, or the method name for interior ops).
    /// Consumed by `aero-analysis` when linting a built graph.
    op: &'static str,
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A node in the autograd graph.
///
/// Cloning a `Var` clones the *handle*, not the data: both handles refer
/// to the same node and share its gradient. Leaf nodes are created with
/// [`Var::parameter`] (trainable) or [`Var::constant`] (frozen); interior
/// nodes are created by the operation methods.
#[derive(Clone)]
pub struct Var {
    inner: Rc<RefCell<Node>>,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node = self.inner.borrow();
        f.debug_struct("Var")
            .field("id", &node.id)
            .field("shape", &node.value.shape())
            .field("requires_grad", &node.requires_grad)
            .field("has_grad", &node.grad.is_some())
            .finish()
    }
}

impl Var {
    // ------------------------------------------------------------ creation

    /// Creates a trainable leaf.
    pub fn parameter(value: Tensor) -> Self {
        Self::leaf(value, true, "parameter")
    }

    /// Creates a frozen leaf that never receives gradients.
    pub fn constant(value: Tensor) -> Self {
        Self::leaf(value, false, "constant")
    }

    fn leaf(value: Tensor, requires_grad: bool, op: &'static str) -> Self {
        Var {
            inner: Rc::new(RefCell::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                op,
                value,
                grad: None,
                parents: Vec::new(),
                backward: None,
                requires_grad,
            })),
        }
    }

    fn from_op(op: &'static str, value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Var {
            inner: Rc::new(RefCell::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                op,
                value,
                grad: None,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
                requires_grad,
            })),
        }
    }

    // ----------------------------------------------------------- accessors

    /// Borrows the node's value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |n| &n.value)
    }

    /// Clones the node's value tensor.
    pub fn to_tensor(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// The shape of the node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().value.shape().to_vec()
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.inner.borrow().requires_grad
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.borrow().grad.clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Overwrites the accumulated gradient (used by gradient clipping:
    /// the training guard rescales stored gradients in place before the
    /// optimizer consumes them).
    ///
    /// # Panics
    ///
    /// Panics if the gradient's shape differs from the value's shape.
    pub fn set_grad(&self, grad: Tensor) {
        let mut node = self.inner.borrow_mut();
        assert_eq!(node.value.shape(), grad.shape(), "set_grad must preserve shape");
        node.grad = Some(grad);
    }

    /// Overwrites the value of a leaf (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs from the old one.
    pub fn assign(&self, value: Tensor) {
        let mut node = self.inner.borrow_mut();
        assert_eq!(node.value.shape(), value.shape(), "assign must preserve shape");
        node.value = value;
    }

    /// A frozen copy of this node's current value, cut off from the graph.
    pub fn detach(&self) -> Var {
        Var::leaf(self.to_tensor(), false, "detach")
    }

    /// Unique id of this node within the process (monotonic per creation).
    pub fn id(&self) -> usize {
        self.inner.borrow().id
    }

    /// Name of the operation that produced this node.
    ///
    /// Leaves report `"parameter"`, `"constant"`, or `"detach"`; interior
    /// nodes report the producing method (`"matmul"`, `"ln"`, ...). This is
    /// the hook the `aero-analysis` graph linter walks.
    pub fn op(&self) -> &'static str {
        self.inner.borrow().op
    }

    /// Clones the parent handles of this node.
    ///
    /// Interior nodes whose inputs all had `requires_grad == false` drop
    /// their parents (nothing to backpropagate into), so a walk over
    /// `parents()` sees exactly the differentiable subgraph.
    pub fn parents(&self) -> Vec<Var> {
        self.inner.borrow().parents.clone()
    }

    /// Whether this node has no recorded parents (a leaf of the tape).
    pub fn is_leaf(&self) -> bool {
        self.inner.borrow().parents.is_empty()
    }

    // ------------------------------------------------------------ backward

    /// Back-propagates from a scalar output.
    ///
    /// Gradients accumulate (add) into any `grad` already present, so call
    /// [`Var::zero_grad`] (or `Module::zero_grad`) between steps.
    ///
    /// # Panics
    ///
    /// Panics if this node does not hold exactly one element.
    pub fn backward(&self) {
        assert_eq!(self.value().numel(), 1, "backward requires a scalar output");
        // Topological order via iterative DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((var, processed)) = stack.pop() {
            if processed {
                order.push(var);
                continue;
            }
            if !visited.insert(var.id()) {
                continue;
            }
            let parents = var.inner.borrow().parents.clone();
            stack.push((var.clone(), true));
            for p in parents {
                if p.requires_grad() && !visited.contains(&p.id()) {
                    stack.push((p, false));
                }
            }
        }
        {
            let mut node = self.inner.borrow_mut();
            let seed = Tensor::ones(node.value.shape());
            node.grad = Some(match node.grad.take() {
                Some(g) => g.add(&seed),
                None => seed,
            });
        }
        for var in order.iter().rev() {
            let (grad, parents) = {
                let node = var.inner.borrow();
                match (&node.grad, &node.backward) {
                    (Some(g), Some(_)) => (g.clone(), node.parents.clone()),
                    _ => continue,
                }
            };
            let parent_grads = {
                let node = var.inner.borrow();
                let back = node.backward.as_ref().expect("checked above");
                back(&grad)
            };
            assert_eq!(parent_grads.len(), parents.len(), "backward arity mismatch");
            for (p, pg) in parents.iter().zip(parent_grads) {
                if !p.requires_grad() {
                    continue;
                }
                let mut pn = p.inner.borrow_mut();
                debug_assert_eq!(pn.value.shape(), pg.shape(), "gradient shape mismatch");
                pn.grad = Some(match pn.grad.take() {
                    Some(g) => g.add(&pg),
                    None => pg,
                });
            }
            // Free interior gradients eagerly; keep leaves for the optimizer.
            let mut node = var.inner.borrow_mut();
            if node.backward.is_some() {
                node.grad = None;
            }
        }
    }

    // ----------------------------------------------------- elementwise ops

    /// Broadcasting elementwise addition.
    pub fn add(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        Var::from_op(
            "add",
            a.add(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![unbroadcast(g, &sa), unbroadcast(g, &sb)]),
        )
    }

    /// Broadcasting elementwise subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        Var::from_op(
            "sub",
            a.sub(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![unbroadcast(g, &sa), unbroadcast(&g.neg(), &sb)]),
        )
    }

    /// Broadcasting elementwise multiplication.
    pub fn mul(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        let (ac, bc) = (a.clone(), b.clone());
        Var::from_op(
            "mul",
            a.mul(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![unbroadcast(&g.mul(&bc), &sa), unbroadcast(&g.mul(&ac), &sb)]),
        )
    }

    /// Broadcasting elementwise division.
    pub fn div(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        let (ac, bc) = (a.clone(), b.clone());
        Var::from_op(
            "div",
            a.div(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let da = g.div(&bc);
                let db = g.mul(&ac).div(&bc.mul(&bc)).neg();
                vec![unbroadcast(&da, &sa), unbroadcast(&db, &sb)]
            }),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, s: f32) -> Var {
        let v = self.to_tensor().mul_scalar(s);
        Var::from_op("scale", v, vec![self.clone()], Box::new(move |g| vec![g.mul_scalar(s)]))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let v = self.to_tensor().add_scalar(s);
        Var::from_op("add_scalar", v, vec![self.clone()], Box::new(|g| vec![g.clone()]))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let out = self.to_tensor().exp();
        let out_c = out.clone();
        Var::from_op("exp", out, vec![self.clone()], Box::new(move |g| vec![g.mul(&out_c)]))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let x = self.to_tensor();
        let xc = x.clone();
        Var::from_op("ln", x.ln(), vec![self.clone()], Box::new(move |g| vec![g.div(&xc)]))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let out = self.to_tensor().sqrt();
        let out_c = out.clone();
        Var::from_op(
            "sqrt",
            out,
            vec![self.clone()],
            Box::new(move |g| vec![g.div(&out_c.mul_scalar(2.0))]),
        )
    }

    /// Elementwise power with a constant exponent.
    pub fn powf(&self, p: f32) -> Var {
        let x = self.to_tensor();
        let xc = x.clone();
        Var::from_op(
            "powf",
            x.powf(p),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&xc.powf(p - 1.0).mul_scalar(p))]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let x = self.to_tensor();
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        Var::from_op(
            "relu",
            x.map(|v| v.max(0.0)),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&mask)]),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.to_tensor().map(|v| 1.0 / (1.0 + (-v).exp()));
        let out_c = out.clone();
        Var::from_op(
            "sigmoid",
            out,
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&out_c.map(|s| s * (1.0 - s)))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.to_tensor().map(f32::tanh);
        let out_c = out.clone();
        Var::from_op(
            "tanh",
            out,
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&out_c.map(|t| 1.0 - t * t))]),
        )
    }

    /// SiLU (swish): `x * sigmoid(x)` — the UNet's activation.
    pub fn silu(&self) -> Var {
        let x = self.to_tensor();
        let xc = x.clone();
        let out = x.map(|v| v / (1.0 + (-v).exp()));
        Var::from_op(
            "silu",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let d = xc.map(|v| {
                    let s = 1.0 / (1.0 + (-v).exp());
                    s * (1.0 + v * (1.0 - s))
                });
                vec![g.mul(&d)]
            }),
        )
    }

    /// Gaussian error linear unit (tanh approximation).
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let x = self.to_tensor();
        let xc = x.clone();
        let out = x.map(|v| 0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh()));
        Var::from_op(
            "gelu",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let d = xc.map(|v| {
                    let inner = C * (v + 0.044715 * v * v * v);
                    let t = inner.tanh();
                    let dinner = C * (1.0 + 3.0 * 0.044715 * v * v);
                    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner
                });
                vec![g.mul(&d)]
            }),
        )
    }

    // ------------------------------------------------------- linear algebra

    /// Rank-2 matrix multiplication.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (ac, bc) = (a.clone(), b.clone());
        Var::from_op(
            "matmul",
            a.matmul(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![g.matmul(&bc.transpose()), ac.transpose().matmul(g)]),
        )
    }

    /// Batched rank-3 matrix multiplication `[b, m, k] x [b, k, n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank, batch, or inner-dimension mismatch.
    pub fn bmm(&self, other: &Var) -> Var {
        let (a, b) = (self.to_tensor(), other.to_tensor());
        let (ac, bc) = (a.clone(), b.clone());
        Var::from_op(
            "bmm",
            a.bmm(&b),
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let da = g.bmm(&bc.permute(&[0, 2, 1]));
                let db = ac.permute(&[0, 2, 1]).bmm(g);
                vec![da, db]
            }),
        )
    }

    // ------------------------------------------------------- shape plumbing

    /// Reshapes, keeping data order.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let old = self.shape();
        let v = self.to_tensor().reshape(shape);
        Var::from_op("reshape", v, vec![self.clone()], Box::new(move |g| vec![g.reshape(&old)]))
    }

    /// Permutes axes.
    ///
    /// # Panics
    ///
    /// Panics unless `axes` is a permutation of `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Var {
        let mut inverse = vec![0usize; axes.len()];
        for (i, &a) in axes.iter().enumerate() {
            inverse[a] = i;
        }
        let v = self.to_tensor().permute(axes);
        Var::from_op("permute", v, vec![self.clone()], Box::new(move |g| vec![g.permute(&inverse)]))
    }

    /// Selects a contiguous range along an axis.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the axis.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let full = self.shape();
        let v = self.to_tensor().narrow(axis, start, len);
        Var::from_op(
            "narrow",
            v,
            vec![self.clone()],
            Box::new(move |g| {
                // Scatter the slice gradient back into a zero tensor.
                let mut out = Tensor::zeros(&full);
                let outer: usize = full[..axis].iter().product();
                let inner: usize = full[axis + 1..].iter().product();
                let dst = out.as_mut_slice();
                let src = g.as_slice();
                for o in 0..outer {
                    let dbase = o * full[axis] * inner + start * inner;
                    let sbase = o * len * inner;
                    dst[dbase..dbase + len * inner]
                        .copy_from_slice(&src[sbase..sbase + len * inner]);
                }
                vec![out]
            }),
        )
    }

    /// Concatenates along an axis.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or off-axis shapes differ.
    pub fn concat(vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "concat requires at least one var");
        let tensors: Vec<Tensor> = vars.iter().map(|v| v.to_tensor()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let lens: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
        let parents: Vec<Var> = vars.iter().map(|&v| v.clone()).collect();
        Var::from_op(
            "concat",
            out,
            parents,
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(lens.len());
                let mut start = 0;
                for &len in &lens {
                    grads.push(g.narrow(axis, start, len));
                    start += len;
                }
                grads
            }),
        )
    }

    /// Selects rows along axis 0 (embedding lookup); gradient scatter-adds.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn index_select0(&self, indices: &[usize]) -> Var {
        let full = self.shape();
        let idx = indices.to_vec();
        let v = self.to_tensor().index_select(0, indices);
        Var::from_op(
            "index_select0",
            v,
            vec![self.clone()],
            Box::new(move |g| {
                let mut out = Tensor::zeros(&full);
                let row: usize = full[1..].iter().product();
                let dst = out.as_mut_slice();
                let src = g.as_slice();
                for (k, &i) in idx.iter().enumerate() {
                    for j in 0..row {
                        dst[i * row + j] += src[k * row + j];
                    }
                }
                vec![out]
            }),
        )
    }

    // ---------------------------------------------------------- reductions

    /// Sum of all elements (rank-0 result).
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let v = Tensor::scalar(self.value().sum());
        Var::from_op(
            "sum",
            v,
            vec![self.clone()],
            Box::new(move |g| vec![Tensor::full(&shape, g.item())]),
        )
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Sum along an axis, keeping it with size 1.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn sum_axis_keepdim(&self, axis: usize) -> Var {
        let full = self.shape();
        let mut kept = full.clone();
        kept[axis] = 1;
        let v = self.to_tensor().sum_axis(axis).reshape(&kept);
        Var::from_op(
            "sum_axis_keepdim",
            v,
            vec![self.clone()],
            Box::new(move |g| vec![g.broadcast_to(&full)]),
        )
    }

    /// Mean along an axis, keeping it with size 1.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn mean_axis_keepdim(&self, axis: usize) -> Var {
        let n = self.shape()[axis] as f32;
        self.sum_axis_keepdim(axis).scale(1.0 / n)
    }

    /// Numerically stable softmax along the last axis.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor.
    pub fn softmax_last_axis(&self) -> Var {
        let out = self.to_tensor().softmax_last_axis();
        let out_c = out.clone();
        let last = *out.shape().last().expect("softmax needs rank >= 1");
        Var::from_op(
            "softmax_last_axis",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                // dx = s ⊙ (g − Σ(g ⊙ s)) per row
                let mut dx = g.mul(&out_c);
                let sums: Vec<f32> = dx.as_slice().chunks(last).map(|r| r.iter().sum()).collect();
                let data = dx.as_mut_slice();
                for (row_idx, row) in data.chunks_mut(last).enumerate() {
                    for v in row.iter_mut() {
                        *v = -sums[row_idx];
                    }
                }
                let centered = g.add(&dx);
                vec![centered.mul(&out_c)]
            }),
        )
    }

    // -------------------------------------------------------- convolutions

    /// 2-D convolution; see [`Tensor::conv2d`] for shape conventions.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, stride: usize, pad: usize) -> Var {
        let x = self.to_tensor();
        let w = weight.to_tensor();
        let b = bias.map(Var::to_tensor);
        let out = x.conv2d(&w, b.as_ref(), stride, pad);
        let (xc, wc) = (x.clone(), w.clone());
        let has_bias = bias.is_some();
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bv) = bias {
            parents.push(bv.clone());
        }
        Var::from_op(
            "conv2d",
            out,
            parents,
            Box::new(move |g| {
                let (cout, cin, kh, kw) =
                    (wc.shape()[0], wc.shape()[1], wc.shape()[2], wc.shape()[3]);
                let n = xc.shape()[0];
                let (oh, ow) = (g.shape()[2], g.shape()[3]);
                // dX = adjoint conv, computed via col2im with the *known* input
                // geometry (conv_transpose2d would infer an ambiguous size when
                // stride does not divide the padded input exactly).
                let wmat_t = wc.reshape(&[cout, cin * kh * kw]).transpose();
                let mut dcols = Tensor::zeros(&[n, cin * kh * kw, oh * ow]);
                for bi in 0..n {
                    let g_b = g.narrow(0, bi, 1).reshape(&[cout, oh * ow]);
                    let d_b = wmat_t.matmul(&g_b);
                    let len = cin * kh * kw * oh * ow;
                    dcols.as_mut_slice()[bi * len..(bi + 1) * len].copy_from_slice(d_b.as_slice());
                }
                let dx = dcols.col2im(xc.shape(), kh, kw, stride, pad);
                // dW: accumulate g_b [cout, oh*ow] @ cols_b^T [oh*ow, cin*kh*kw].
                let cols = xc.im2col(kh, kw, stride, pad);
                let mut dw = Tensor::zeros(&[cout, cin * kh * kw]);
                for bi in 0..n {
                    let g_b = g.narrow(0, bi, 1).reshape(&[cout, oh * ow]);
                    let col_b = cols.narrow(0, bi, 1).reshape(&[cin * kh * kw, oh * ow]);
                    dw = dw.add(&g_b.matmul(&col_b.transpose()));
                }
                let dw = dw.reshape(&[cout, cin, kh, kw]);
                let mut grads = vec![dx, dw];
                if has_bias {
                    // db = sum over batch and spatial dims.
                    let db = g.sum_axis(3).sum_axis(2).sum_axis(0);
                    grads.push(db);
                }
                grads
            }),
        )
    }

    /// Transposed 2-D convolution; see [`Tensor::conv_transpose2d`].
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn conv_transpose2d(
        &self,
        weight: &Var,
        bias: Option<&Var>,
        stride: usize,
        pad: usize,
    ) -> Var {
        let x = self.to_tensor();
        let w = weight.to_tensor();
        let b = bias.map(Var::to_tensor);
        let out = x.conv_transpose2d(&w, b.as_ref(), stride, pad);
        let (xc, wc) = (x.clone(), w.clone());
        let has_bias = bias.is_some();
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bv) = bias {
            parents.push(bv.clone());
        }
        Var::from_op(
            "conv_transpose2d",
            out,
            parents,
            Box::new(move |g| {
                let (cin, cout, kh, kw) =
                    (wc.shape()[0], wc.shape()[1], wc.shape()[2], wc.shape()[3]);
                let n = xc.shape()[0];
                let (h, w_sp) = (xc.shape()[2], xc.shape()[3]);
                // conv_transpose is the adjoint of conv2d with the same buffer,
                // so its input gradient is the forward conv2d.
                let dx = g.conv2d(&wc, None, stride, pad);
                // dW: out = col2im(W_mat^T x) ⇒ dW_mat = Σ_b x_b @ im2col(g)_b^T.
                let gcols = g.im2col(kh, kw, stride, pad); // [n, cout*kh*kw, h*w]
                let mut dw = Tensor::zeros(&[cin, cout * kh * kw]);
                for bi in 0..n {
                    let x_b = xc.narrow(0, bi, 1).reshape(&[cin, h * w_sp]);
                    let gc_b = gcols.narrow(0, bi, 1).reshape(&[cout * kh * kw, h * w_sp]);
                    dw = dw.add(&x_b.matmul(&gc_b.transpose()));
                }
                let dw = dw.reshape(&[cin, cout, kh, kw]);
                let mut grads = vec![dx, dw];
                if has_bias {
                    let db = g.sum_axis(3).sum_axis(2).sum_axis(0);
                    grads.push(db);
                }
                grads
            }),
        )
    }

    /// Average pooling with square window `k`, stride `k`.
    ///
    /// # Panics
    ///
    /// Panics unless spatial dims divide by `k`.
    pub fn avg_pool2d(&self, k: usize) -> Var {
        let x = self.to_tensor();
        let in_shape = x.shape().to_vec();
        let out = x.avg_pool2d(k);
        Var::from_op(
            "avg_pool2d",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let (n, c, oh, ow) = (g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]);
                let mut dx = Tensor::zeros(&in_shape);
                let (h, w) = (in_shape[2], in_shape[3]);
                let inv = 1.0 / (k * k) as f32;
                let src = g.as_slice();
                let dst = dx.as_mut_slice();
                for b in 0..n {
                    for ch in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let gv = src[((b * c + ch) * oh + oy) * ow + ox] * inv;
                                for ky in 0..k {
                                    for kx in 0..k {
                                        dst[((b * c + ch) * h + oy * k + ky) * w + ox * k + kx] +=
                                            gv;
                                    }
                                }
                            }
                        }
                    }
                }
                vec![dx]
            }),
        )
    }

    /// Nearest-neighbour 2× upsampling.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4.
    pub fn upsample_nearest2x(&self) -> Var {
        let out = self.to_tensor().upsample_nearest2x();
        Var::from_op(
            "upsample_nearest2x",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                // Gradient of nearest-2x is the sum over each 2×2 cell.
                vec![g.avg_pool2d(2).mul_scalar(4.0)]
            }),
        )
    }

    // ------------------------------------------------------------- losses

    /// Mean-squared-error loss against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_loss(&self, target: &Tensor) -> Var {
        assert_eq!(self.shape(), target.shape(), "mse_loss shape mismatch");
        let t = Var::constant(target.clone());
        let diff = self.sub(&t);
        diff.mul(&diff).mean()
    }
}

/// Reduces a gradient over axes that were broadcast during the forward op.
fn unbroadcast(grad: &Tensor, target_shape: &[usize]) -> Tensor {
    if grad.shape() == target_shape {
        return grad.clone();
    }
    let mut g = grad.clone();
    // Collapse leading extra axes.
    while g.rank() > target_shape.len() {
        g = g.sum_axis(0);
    }
    // Sum over axes where the target had size 1.
    for axis in 0..target_shape.len() {
        if target_shape[axis] == 1 && g.shape()[axis] != 1 {
            let mut kept = g.shape().to_vec();
            kept[axis] = 1;
            g = g.sum_axis(axis).reshape(&kept);
        }
    }
    g.reshape(target_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())), "{a} vs {b}");
    }

    #[test]
    fn add_backward_broadcast() {
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        let b = Var::parameter(Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]));
        let loss = a.add(&b).sum();
        loss.backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_backward() {
        let a = Var::parameter(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 7.0], &[2]));
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_backward() {
        let a = Var::parameter(Tensor::from_vec(vec![6.0], &[1]));
        let b = Var::parameter(Tensor::from_vec(vec![3.0], &[1]));
        a.div(&b).sum().backward();
        assert_close(a.grad().unwrap().item(), 1.0 / 3.0, 1e-6);
        assert_close(b.grad().unwrap().item(), -6.0 / 9.0, 1e-6);
    }

    #[test]
    fn matmul_backward() {
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        a.matmul(&b).sum().backward();
        // d/dA (sum AB) = 1 B^T, d/dB = A^T 1
        assert_eq!(a.grad().unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn chain_rule_through_activation() {
        let x = Var::parameter(Tensor::from_vec(vec![0.5], &[1]));
        let y = x.tanh().mul(&x.tanh()).sum(); // tanh(x)^2
        y.backward();
        let t = 0.5f32.tanh();
        assert_close(x.grad().unwrap().item(), 2.0 * t * (1.0 - t * t), 1e-5);
    }

    #[test]
    fn grad_accumulates_for_shared_node() {
        let x = Var::parameter(Tensor::from_vec(vec![3.0], &[1]));
        let y = x.add(&x).sum(); // 2x
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn constant_receives_no_grad() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let c = Var::constant(Tensor::from_vec(vec![2.0], &[1]));
        x.mul(&c).sum().backward();
        assert!(c.grad().is_none());
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn detach_cuts_graph() {
        let x = Var::parameter(Tensor::from_vec(vec![2.0], &[1]));
        let d = x.mul(&x).detach();
        d.mul(&x).sum().backward();
        assert_eq!(x.grad().unwrap().item(), 4.0); // only the outer factor
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let x0 = Tensor::randn(&[2, 4], &mut rng);
        let x = Var::parameter(x0.clone());
        let w = Tensor::randn(&[2, 4], &mut rng);
        let loss = x.softmax_last_axis().mul(&Var::constant(w.clone())).sum();
        loss.backward();
        let analytic = x.grad().unwrap();
        let eps = 1e-3;
        for i in 0..8 {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let f = |t: &Tensor| t.softmax_last_axis().mul(&w).sum();
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert_close(analytic.as_slice()[i], numeric, 2e-2);
        }
    }

    #[test]
    fn conv2d_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let x0 = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let w0 = Tensor::randn(&[3, 2, 3, 3], &mut rng).mul_scalar(0.5);
        let b0 = Tensor::randn(&[3], &mut rng);
        let proj = Tensor::randn(&[1, 3, 4, 4], &mut rng);
        let run = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            x.conv2d(w, Some(b), 1, 1)
                .as_slice()
                .iter()
                .zip(proj.as_slice())
                .map(|(a, p)| a * p)
                .sum()
        };
        let x = Var::parameter(x0.clone());
        let w = Var::parameter(w0.clone());
        let b = Var::parameter(b0.clone());
        let out = x.conv2d(&w, Some(&b), 1, 1);
        out.mul(&Var::constant(proj.clone())).sum().backward();
        let eps = 1e-2;
        // spot-check a few coordinates of each gradient
        for i in [0usize, 7, 15] {
            let mut p = x0.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = x0.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (run(&p, &w0, &b0) - run(&m, &w0, &b0)) / (2.0 * eps);
            assert_close(x.grad().unwrap().as_slice()[i], num, 5e-2);
        }
        for i in [0usize, 10, 50] {
            let mut p = w0.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = w0.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (run(&x0, &p, &b0) - run(&x0, &m, &b0)) / (2.0 * eps);
            assert_close(w.grad().unwrap().as_slice()[i], num, 5e-2);
        }
        for i in 0..3 {
            let mut p = b0.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = b0.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (run(&x0, &w0, &p) - run(&x0, &w0, &m)) / (2.0 * eps);
            assert_close(b.grad().unwrap().as_slice()[i], num, 5e-2);
        }
    }

    #[test]
    fn conv_transpose_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(17);
        let x0 = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let w0 = Tensor::randn(&[2, 3, 2, 2], &mut rng).mul_scalar(0.5);
        let proj = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let run = |x: &Tensor, w: &Tensor| -> f32 {
            x.conv_transpose2d(w, None, 2, 0)
                .as_slice()
                .iter()
                .zip(proj.as_slice())
                .map(|(a, p)| a * p)
                .sum()
        };
        let x = Var::parameter(x0.clone());
        let w = Var::parameter(w0.clone());
        x.conv_transpose2d(&w, None, 2, 0).mul(&Var::constant(proj.clone())).sum().backward();
        let eps = 1e-2;
        for i in [0usize, 5, 17] {
            let mut p = x0.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = x0.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (run(&p, &w0) - run(&m, &w0)) / (2.0 * eps);
            assert_close(x.grad().unwrap().as_slice()[i], num, 5e-2);
        }
        for i in [0usize, 9, 23] {
            let mut p = w0.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = w0.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (run(&x0, &p) - run(&x0, &m)) / (2.0 * eps);
            assert_close(w.grad().unwrap().as_slice()[i], num, 5e-2);
        }
    }

    #[test]
    fn pooling_and_upsample_grads() {
        let x =
            Var::parameter(Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]));
        x.avg_pool2d(2).sum().backward();
        assert!(x.grad().unwrap().as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));

        let y = Var::parameter(Tensor::ones(&[1, 1, 2, 2]));
        y.upsample_nearest2x().sum().backward();
        assert!(y.grad().unwrap().as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn narrow_and_concat_grads() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        let a = x.narrow(0, 0, 2);
        let b = x.narrow(0, 2, 2);
        Var::concat(&[&b, &a], 0).scale(2.0).sum().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn index_select_scatter_adds() {
        let table = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
        table.index_select0(&[0, 2, 0]).sum().backward();
        assert_eq!(table.grad().unwrap().as_slice(), &[2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn mse_loss_gradient() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 3.0], &[2]));
        let loss = x.mse_loss(&Tensor::from_vec(vec![0.0, 0.0], &[2]));
        loss.backward();
        // d/dx mean((x)^2) = 2x/n
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 3.0]);
        assert_close(loss.value().item(), 5.0, 1e-6);
    }

    #[test]
    fn bmm_backward_matches_loop_of_matmuls() {
        let mut rng = StdRng::seed_from_u64(19);
        let a0 = Tensor::randn(&[2, 3, 4], &mut rng);
        let b0 = Tensor::randn(&[2, 4, 2], &mut rng);
        let a = Var::parameter(a0.clone());
        let b = Var::parameter(b0.clone());
        a.bmm(&b).sum().backward();
        // reference: grad of sum(AB) per batch
        for batch in 0..2 {
            let bt = b0.narrow(0, batch, 1).reshape(&[4, 2]).transpose();
            let ones = Tensor::ones(&[3, 2]);
            let da_ref = ones.matmul(&bt);
            let da = a.grad().unwrap().narrow(0, batch, 1).reshape(&[3, 4]);
            assert!(da.sub(&da_ref).abs().max() < 1e-5);
        }
    }

    #[test]
    fn sum_axis_keepdim_grad_broadcasts() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        x.sum_axis_keepdim(1)
            .mul(&Var::constant(Tensor::from_vec(vec![10.0, 20.0], &[2, 1])))
            .sum()
            .backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn backward_frees_interior_grads_but_keeps_leaves() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0], &[1]));
        let mid = x.scale(2.0);
        mid.sum().backward();
        assert!(x.grad().is_some());
        assert!(mid.grad().is_none());
    }
}
