//! Weight initialization helpers.

use aero_tensor::Tensor;
use rand::Rng;

/// Kaiming/He-normal initialization for layers followed by a ReLU-family
/// activation: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(shape, rng).mul_scalar(std)
}

/// Xavier/Glorot-uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Small-scale normal initialization used for output projections so
/// freshly initialized residual branches start near the identity.
pub fn scaled_normal<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Tensor {
    Tensor::randn(shape, rng).mul_scalar(std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = he_normal(&[100, 100], 100, &mut rng);
        let var = t.var();
        assert!((var - 0.02).abs() < 0.005, "var {var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xavier_uniform(&[50, 50], 50, 50, &mut rng);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn scaled_normal_std() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = scaled_normal(&[10_000], 0.01, &mut rng);
        assert!(t.var().sqrt() < 0.02);
    }
}
