//! Command-line interface for training, persisting, and sampling
//! AeroDiffusion pipelines.
//!
//! ```text
//! aerodiffusion_cli train  <model-dir> [--scenes N] [--seed S] [--scale smoke|small|paper]
//!                          [--threads N] [--backend reference|blocked]
//!                          [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--max-steps N]
//! aerodiffusion_cli sample <model-dir> <out.ppm> [--seed S] [--night] [--trace FILE]
//!                          [--task view|inpaint|superres] [--prompt STR] [--source FILE.ppm]
//!                          [--source-view A,P,H] [--target-view A,P,H]
//!                          [--box label,x0,y0,x1,y1]…
//!                          [--scale …] [--threads N] [--backend reference|blocked]
//! aerodiffusion_cli profile <model-dir> [--seed S] [--ndjson FILE] [--scale …] [--threads N]
//!                          [--backend reference|blocked]
//! aerodiffusion_cli serve  <model-dir>|--demo [--replicas N] [--workers N] [--max-batch N]
//!                          [--scale …] [--threads N] [--backend reference|blocked]
//!                          [--registry DIR [--model name[@version]]]
//!                          [--tenant-rate RPS [--tenant-burst N]] [--shed-queue-depth N]
//!                          [--shed-p95-ms MS] [--stream] [--max-worker-restarts N]
//!                          [--inject-panic-at N[,N…]] [--inject-replica-kill-at N[,N…]]
//! aerodiffusion_cli info   <model-dir>
//! aerodiffusion_cli lint   [--scale smoke|small|paper] [--all]
//! aerodiffusion_cli model export  <model-dir> <out.amdl> [--q8] [--scale …]
//!                          [--registry DIR --name NAME] [--quality-scenes N]
//! aerodiffusion_cli model inspect <artifact.amdl>
//! aerodiffusion_cli model list    <registry-dir>
//! ```
//!
//! `model export` packs a persisted pipeline directory into one
//! CRC-protected `.amdl` artifact — dense `f32` by default, `--q8` for
//! block-quantized weights (~28% of the dense payload) with a per-layer
//! quantization-error report on stderr. With `--registry`/`--name` the
//! artifact is also published into a versioned registry that `serve
//! --registry` can hot-swap from. `--quality-scenes N` additionally
//! measures the q8-vs-f32 FID and CLIP-score deltas on an N-scene
//! evaluation set. `model inspect` prints an artifact's metadata and
//! tensor table after verifying its checksum; `model list` prints a
//! registry's contents with per-entry integrity states.
//!
//! With `--checkpoint-dir`, `train` writes crash-safe checkpoints of the
//! joint diffusion stage every `--checkpoint-every` steps (CRC-verified,
//! written atomically). A killed run re-invoked with `--resume` continues
//! from the newest valid checkpoint on a bit-identical trajectory;
//! corrupt checkpoints are skipped. `--max-steps` stops the joint stage
//! early — checkpointed but unsaved — which is how CI simulates a crash.
//!
//! `--threads` pins the tensor-kernel worker pool (default: the
//! `AERO_THREADS` env var, else the host's available parallelism, capped
//! at 8). `--backend` picks the compute backend: `blocked` (default) runs
//! the cache-blocked microkernels, `reference` the serial oracle kernels
//! (default: the `AERO_BACKEND` env var, else `blocked`). Both are purely
//! performance knobs: the kernels are bit-identical at every thread count
//! and under either backend, so they only change wall-clock time, never
//! output bytes (CI byte-compares a sample across backends).
//!
//! `--inject-panic-at` schedules a deterministic in-worker panic on the
//! Nth submitted request (0-based): the request is answered with a typed
//! `worker_error` reply, everything else is still served, and the
//! watchdog respawns the worker. `--inject-replica-kill-at` goes further
//! and kills the whole replica group holding the Nth request's batch —
//! survivors absorb the rerouted work, the supervisor respawns the
//! group, and no request is dropped.
//!
//! `--replicas` shards the worker pool into N independent replica groups
//! (own queue, own condition cache), routed by `(prompt, variant)` so
//! repeated prompts keep hitting a warm cache. `--tenant-rate`/
//! `--tenant-burst` arm per-tenant token buckets; `--shed-queue-depth`
//! and `--shed-p95-ms` arm the global load-shedding gates — shed
//! requests get a typed `overloaded` reply with a `retry_after_ms` hint.
//! `--stream` emits quantized intermediate-latent `preview` lines for
//! every request while it samples (clients can opt in per request with
//! `"stream":true`, and abort with a `{"type":"cancel","id":…}` line).
//!
//! `profile` runs one conditioned DDIM generation with span collection
//! enabled and prints the aggregated span tree (inclusive/exclusive
//! wall-clock per stage, sampler steps collapsed to one `×N` line)
//! followed by the process-global metric registry. `sample --trace FILE`
//! does the same collection around a normal sample and writes the spans
//! plus metrics as NDJSON to `FILE` — observation never perturbs the
//! output image, which stays byte-identical with tracing on or off (CI
//! compares the two).
//!
//! `sample --task` runs one of the image-conditioned pipelines instead
//! of the default text-to-image path: `view` warps a source image
//! through the homography between `--source-view` and `--target-view`
//! (each an `altitude,pitch,heading` triple; defaults: nadir →
//! `0.6,60,30`), `inpaint` re-denoises only inside the `--box
//! label,x0,y0,x1,y1` keypoint regions (repeatable; defaults to the
//! reference scene's ground-truth boxes), and `superres` runs the
//! two-stage cascade (half-budget draft → half-resolution base →
//! full-budget super-resolve). `--source FILE.ppm` supplies the source
//! image for `view`/`inpaint` (resized to the model's native resolution
//! if needed; default: a freshly rendered reference scene) and
//! `--prompt` the target description (default: the reference caption).
//! Without `--task` the sample path is byte-identical to previous
//! releases.
//!
//! `lint` statically validates the model geometry a configuration would
//! realise — symbolic shape inference over the whole pipeline plus the
//! serving batcher's coalesced-condition contract — and exits non-zero if
//! any `ADxxxx` error is found, without training anything.
//!
//! `serve` speaks newline-delimited JSON over stdin/stdout: one
//! `{"type":"generate","prompt":…,"seed":…}` request per input line, one
//! reply (base64 RGB image + per-stage latency, or a typed rejection) per
//! output line, plus a `{"type":"stats"}` probe. `--demo` trains a
//! smoke-scale pipeline in-process instead of loading one from disk.

use aero_diffusion::{DdimSampler, StepSink};
use aero_model::{
    snapshot_from_artifact, write_snapshot, ModelArtifact, ModelRegistry, Quantization,
};
use aero_scene::{
    build_dataset, Annotation, BBox, DatasetConfig, DatasetItem, Homography, Image, ObjectClass,
    SceneGeneratorConfig, Viewpoint,
};
use aero_serve::{lint_serve, serve_ndjson, Fault, FaultPlan, ServeConfig, ServeRuntime};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig, PipelineSnapshot, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::process::ExitCode;
use std::time::Duration;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn scale_config(args: &[String]) -> PipelineConfig {
    match parse_flag(args, "--scale").as_deref() {
        Some("paper") => PipelineConfig::paper(),
        Some("small") => PipelineConfig::small(),
        _ => PipelineConfig::smoke(),
    }
}

/// Applies `--threads N` (falling back to the `AERO_THREADS` env var and
/// then the host's available parallelism) as the process-wide kernel
/// thread policy, and `--backend reference|blocked` (falling back to the
/// `AERO_BACKEND` env var, then `blocked`) as the process-wide compute
/// backend. Purely performance knobs: outputs are bit-identical at any
/// thread count and under either backend.
fn apply_kernel_flags(args: &[String]) -> Result<(), Box<dyn Error>> {
    if let Some(v) = parse_flag(args, "--threads") {
        aero_tensor::parallel::set_global_threads(v.parse()?);
    }
    if let Some(v) = parse_flag(args, "--backend") {
        aero_tensor::backend::set_global_backend(v.parse::<aero_tensor::BackendKind>()?);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        _ => {
            eprintln!(
                "usage: aerodiffusion_cli <train|sample|profile|serve|info|lint> [args]\n\
                 \n  train  <dir> [--scenes N] [--seed S] [--scale smoke|small|paper] [--threads N]\n\
                 \n         [--backend reference|blocked]\n\
                 \n         [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--max-steps N]\n\
                 \n  sample <dir> <out.ppm> [--seed S] [--night] [--trace FILE] [--scale …] [--threads N]\n\
                 \n         [--backend reference|blocked]\n\
                 \n         [--task view|inpaint|superres] [--prompt STR] [--source FILE.ppm]\n\
                 \n         [--source-view A,P,H] [--target-view A,P,H] [--box label,x0,y0,x1,y1]…\n\
                 \n  profile <dir> [--seed S] [--ndjson FILE] [--scale …] [--threads N]\n\
                 \n         [--backend reference|blocked]\n\
                 \n  serve  <dir>|--demo [--replicas N] [--workers N] [--max-batch N] [--queue N]\n\
                 \n         [--batch-wait-ms MS] [--cache N] [--steps N] [--guidance G] [--scale …]\n\
                 \n         [--threads N] [--backend reference|blocked]\n\
                 \n         [--registry DIR [--model name[@version]]]\n\
                 \n         [--tenant-rate RPS [--tenant-burst N]] [--shed-queue-depth N]\n\
                 \n         [--shed-p95-ms MS] [--stream] [--max-worker-restarts N]\n\
                 \n         [--inject-panic-at N[,N…]] [--inject-replica-kill-at N[,N…]]\n\
                 \n  info   <dir>\n\
                 \n  lint   [--scale smoke|small|paper] [--all] [--source-root DIR]\n\
                 \n         [--baseline FILE | --write-baseline FILE]\n\
                 \n  model  export <dir> <out.amdl> [--q8] [--scale …]\n\
                 \n                [--registry DIR --name NAME] [--quality-scenes N]\n\
                 \n  model  inspect <artifact.amdl>\n\
                 \n  model  list <registry-dir>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn Error>> {
    apply_kernel_flags(args)?;
    let dir = args.first().ok_or("train requires a model directory")?;
    let n_scenes: usize = parse_flag(args, "--scenes").map(|v| v.parse()).transpose()?.unwrap_or(8);
    let seed: u64 = parse_flag(args, "--seed").map(|v| v.parse()).transpose()?.unwrap_or(42);
    let config = scale_config(args);
    println!("building {n_scenes}-scene dataset…");
    let dataset = build_dataset(&DatasetConfig {
        n_scenes,
        image_size: config.vision.image_size,
        seed,
        generator: SceneGeneratorConfig::default(),
    });
    println!("training pipeline (this is CPU-bound)…");
    let Some(ckpt_dir) = parse_flag(args, "--checkpoint-dir") else {
        let pipeline = AeroDiffusionPipeline::fit(&dataset, config, seed);
        pipeline.save(dir)?;
        println!("saved trained pipeline to {dir}");
        return Ok(());
    };
    let every: u64 =
        parse_flag(args, "--checkpoint-every").map(|v| v.parse()).transpose()?.unwrap_or(10);
    let max_steps: Option<u64> = parse_flag(args, "--max-steps").map(|v| v.parse()).transpose()?;
    if !args.iter().any(|a| a == "--resume") && std::path::Path::new(&ckpt_dir).exists() {
        // A fresh run must not silently continue someone else's training.
        std::fs::remove_dir_all(&ckpt_dir)?;
    }
    let checkpoint = aero_diffusion::CheckpointConfig::new(&ckpt_dir, every.max(1));
    let (pipeline, report) = AeroDiffusionPipeline::fit_with_checkpoints(
        &dataset,
        config,
        aero_text::llm::LlmProvider::KeypointAware,
        aerodiffusion::AblationVariant::Full,
        seed,
        &checkpoint,
        max_steps,
    )?;
    if let Some(step) = report.resumed_from {
        println!(
            "resumed from checkpoint step {step} ({} corrupt skipped)",
            report.skipped_corrupt
        );
    }
    match report.last_loss {
        Some(loss) => println!("final loss: {loss:.6}"),
        None => println!("final loss: n/a (no new steps ran)"),
    }
    if report.completed {
        pipeline.save(dir)?;
        println!("saved trained pipeline to {dir}");
    } else {
        println!(
            "stopped at step {} (--max-steps); checkpoints in {ckpt_dir}, rerun with --resume",
            report.steps
        );
    }
    Ok(())
}

fn cmd_sample(args: &[String]) -> Result<(), Box<dyn Error>> {
    apply_kernel_flags(args)?;
    let dir = args.first().ok_or("sample requires a model directory")?;
    let out = args.get(1).ok_or("sample requires an output .ppm path")?;
    let seed: u64 = parse_flag(args, "--seed").map(|v| v.parse()).transpose()?.unwrap_or(7);
    let config = scale_config(args);
    let pipeline = AeroDiffusionPipeline::load(dir, config)?;
    // a fresh reference scene to condition on
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: config.vision.image_size,
        seed: seed ^ 0x5EED,
        generator: SceneGeneratorConfig::default(),
    });
    let item = &dataset.items[0];
    let mut rng = StdRng::seed_from_u64(seed);
    let night = args.iter().any(|a| a == "--night");
    let mode = sample_mode(args, &pipeline, item, seed, night)?;
    let sampler = DdimSampler::new(config.diffusion.ddim_steps, config.diffusion.guidance_scale);
    let render = |rng: &mut StdRng| match &mode {
        SampleMode::Text if night => {
            aerodiffusion::viewpoint::night_synthesis(&pipeline, item, rng).image
        }
        SampleMode::Text => pipeline.generate(item, rng),
        SampleMode::Task(task) => pipeline.run_task(task, &sampler, seed, StepSink::none()),
        SampleMode::Cascade(prompt) => {
            pipeline.super_res_cascade(item, prompt, &sampler, seed, StepSink::none())
        }
    };
    // `--trace` turns on span collection around the exact same call;
    // observation never changes the generated bytes (CI compares).
    let image = match parse_flag(args, "--trace") {
        None => render(&mut rng),
        Some(path) => {
            let (image, trace) = aero_obs::span::collect(|| render(&mut rng));
            write_obs_ndjson(&path, &trace, &aero_obs::global().snapshot())?;
            eprintln!("wrote trace ({} spans) to {path}", trace.span_count());
            image
        }
    };
    image.save_ppm(out)?;
    println!("wrote {out} ({}x{})", image.width(), image.height());
    Ok(())
}

/// What `sample` actually runs: the pre-task text path (bit-identical to
/// previous releases), a single image-conditioned [`TaskSpec`], or the
/// two-stage super-resolution cascade.
enum SampleMode {
    Text,
    Task(TaskSpec),
    Cascade(String),
}

/// Resolves `--task`/`--prompt`/`--source`/`--source-view`/
/// `--target-view`/`--box` into a [`SampleMode`]. All fallible work
/// (file I/O, flag parsing) happens here so the render closure stays
/// infallible and traceable.
fn sample_mode(
    args: &[String],
    pipeline: &AeroDiffusionPipeline,
    item: &DatasetItem,
    seed: u64,
    night: bool,
) -> Result<SampleMode, Box<dyn Error>> {
    let kind = match parse_flag(args, "--task") {
        None => return Ok(SampleMode::Text),
        Some(kind) if kind == "text" => return Ok(SampleMode::Text),
        Some(kind) => kind,
    };
    if night {
        return Err("--night only applies to the default text-to-image sample".into());
    }
    let prompt = match parse_flag(args, "--prompt") {
        Some(p) => p,
        None => pipeline.caption_for(item, &mut StdRng::seed_from_u64(seed)),
    };
    match kind.as_str() {
        "superres" => Ok(SampleMode::Cascade(prompt)),
        "view" => {
            let source = load_source_image(args, item, pipeline)?;
            let source_view = match parse_flag(args, "--source-view") {
                Some(v) => parse_viewpoint(&v)?,
                None => Viewpoint::default(),
            };
            let target_view = match parse_flag(args, "--target-view") {
                Some(v) => parse_viewpoint(&v)?,
                None => Viewpoint { altitude: 0.6, pitch_deg: 60.0, heading_deg: 30.0 },
            };
            let homography =
                Homography::between(source.width(), source.height(), &source_view, &target_view);
            Ok(SampleMode::Task(TaskSpec::view(source, homography, &prompt)))
        }
        "inpaint" => {
            let source = load_source_image(args, item, pipeline)?;
            let mut boxes = Vec::new();
            for (i, arg) in args.iter().enumerate() {
                if arg == "--box" {
                    let spec = args.get(i + 1).ok_or("--box needs a label,x0,y0,x1,y1 argument")?;
                    boxes.push(parse_box(spec)?);
                }
            }
            if boxes.is_empty() {
                // No explicit keypoints: re-denoise the reference
                // scene's ground-truth object boxes.
                boxes = item.rendered.boxes.clone();
            }
            Ok(SampleMode::Task(TaskSpec::inpaint(source, boxes, &prompt)))
        }
        other => Err(format!("unknown --task {other:?} (expected view|inpaint|superres)").into()),
    }
}

/// The source image for `view`/`inpaint`: `--source FILE.ppm` (resized
/// to the model's native resolution if needed), else the freshly
/// rendered reference scene.
fn load_source_image(
    args: &[String],
    item: &DatasetItem,
    pipeline: &AeroDiffusionPipeline,
) -> Result<Image, Box<dyn Error>> {
    let Some(path) = parse_flag(args, "--source") else {
        return Ok(item.rendered.image.clone());
    };
    let image = Image::load_ppm(&path)?;
    let native = pipeline.config().vision.image_size;
    if image.width() == native && image.height() == native {
        Ok(image)
    } else {
        Ok(image.resize(native, native))
    }
}

/// Parses an `altitude,pitch,heading` triple.
fn parse_viewpoint(spec: &str) -> Result<Viewpoint, Box<dyn Error>> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [altitude, pitch, heading] = parts.as_slice() else {
        return Err(format!("viewpoint {spec:?} must be altitude,pitch,heading").into());
    };
    Ok(Viewpoint {
        altitude: altitude.trim().parse()?,
        pitch_deg: pitch.trim().parse()?,
        heading_deg: heading.trim().parse()?,
    })
}

/// Parses a `label,x0,y0,x1,y1` keypoint box.
fn parse_box(spec: &str) -> Result<Annotation, Box<dyn Error>> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [label, x0, y0, x1, y1] = parts.as_slice() else {
        return Err(format!("box {spec:?} must be label,x0,y0,x1,y1").into());
    };
    let class = ObjectClass::ALL
        .into_iter()
        .find(|c| c.label() == label.trim())
        .ok_or_else(|| format!("unknown box label {:?}", label.trim()))?;
    Ok(Annotation {
        class,
        bbox: BBox::new(
            x0.trim().parse()?,
            y0.trim().parse()?,
            x1.trim().parse()?,
            y1.trim().parse()?,
        ),
    })
}

/// Writes one NDJSON line per aggregated span path followed by one per
/// registered metric.
fn write_obs_ndjson(
    path: &str,
    trace: &aero_obs::Trace,
    metrics: &aero_obs::MetricsSnapshot,
) -> Result<(), Box<dyn Error>> {
    use aero_obs::TraceSink;
    let mut sink = aero_obs::NdjsonTraceSink::new();
    sink.consume(trace);
    let mut lines = sink.take_lines();
    lines.extend(metrics.render_ndjson());
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(path, body)?;
    Ok(())
}

/// Runs one conditioned generation under span collection and prints the
/// profile: the aggregated span tree (inclusive / self wall-clock per
/// stage) and the process-global metric registry.
fn cmd_profile(args: &[String]) -> Result<(), Box<dyn Error>> {
    apply_kernel_flags(args)?;
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("profile requires a model directory")?;
    let seed: u64 = parse_flag(args, "--seed").map(|v| v.parse()).transpose()?.unwrap_or(7);
    let config = scale_config(args);
    let pipeline = AeroDiffusionPipeline::load(dir, config)?;
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 1,
        image_size: config.vision.image_size,
        seed: seed ^ 0x5EED,
        generator: SceneGeneratorConfig::default(),
    });
    let item = &dataset.items[0];
    let mut rng = StdRng::seed_from_u64(seed);
    let (image, trace) = aero_obs::span::collect(|| pipeline.generate(item, &mut rng));
    let metrics = aero_obs::global().snapshot();
    println!(
        "profiled one generate() at seed {seed} ({}x{} output)",
        image.width(),
        image.height()
    );
    println!("\n== span tree ==");
    let mut tree = aero_obs::TableTraceSink::new();
    aero_obs::TraceSink::consume(&mut tree, &trace);
    print!("{}", tree.take_rendered());
    println!("\n== metrics ==");
    print!("{}", metrics.render_table());
    if let Some(path) = parse_flag(args, "--ndjson") {
        write_obs_ndjson(&path, &trace, &metrics)?;
        println!("\nwrote NDJSON profile to {path}");
    }
    Ok(())
}

/// The trained weights to serve: a persisted model directory, or a
/// smoke-scale pipeline trained in-process for `--demo`.
fn serve_snapshot(
    args: &[String],
    config: PipelineConfig,
) -> Result<PipelineSnapshot, Box<dyn Error>> {
    if args.iter().any(|a| a == "--demo") {
        let n_scenes: usize =
            parse_flag(args, "--scenes").map(|v| v.parse()).transpose()?.unwrap_or(6);
        let seed: u64 = parse_flag(args, "--seed").map(|v| v.parse()).transpose()?.unwrap_or(42);
        eprintln!("--demo: training a throwaway {n_scenes}-scene pipeline in-process…");
        let dataset = build_dataset(&DatasetConfig {
            n_scenes,
            image_size: config.vision.image_size,
            seed,
            generator: SceneGeneratorConfig::default(),
        });
        Ok(AeroDiffusionPipeline::fit(&dataset, config, seed).snapshot())
    } else {
        let dir = args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("serve requires a model directory or --demo")?;
        Ok(AeroDiffusionPipeline::load(dir, config)?.snapshot())
    }
}

/// Splits a `name[@version]` model spec.
fn parse_model_spec(spec: &str) -> Result<(&str, Option<u32>), Box<dyn Error>> {
    match spec.split_once('@') {
        None => Ok((spec, None)),
        Some((name, version)) => Ok((name, Some(version.parse()?))),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn Error>> {
    apply_kernel_flags(args)?;
    let registry = parse_flag(args, "--registry")
        .map(|dir| ModelRegistry::open(std::path::Path::new(&dir)))
        .transpose()?;
    let model_spec = parse_flag(args, "--model");
    let snapshot = match (&registry, &model_spec) {
        (Some(registry), Some(spec)) => {
            // Boot straight from the registry artifact (CRC-verified).
            let (name, version) = parse_model_spec(spec)?;
            let entry = registry.resolve(name, version)?;
            eprintln!("booting registry model {}@{}", entry.name, entry.version);
            snapshot_from_artifact(&registry.open_artifact(&entry)?)?
        }
        (None, Some(_)) => return Err("--model requires --registry".into()),
        _ => serve_snapshot(args, scale_config(args))?,
    };
    let mut serve = ServeConfig::for_pipeline(snapshot.config());
    if let Some(v) = parse_flag(args, "--replicas") {
        serve.replicas = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--workers") {
        serve.workers = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--max-batch") {
        serve.max_batch = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--queue") {
        serve.queue_capacity = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--batch-wait-ms") {
        serve.batch_wait = Duration::from_millis(v.parse()?);
    }
    if let Some(v) = parse_flag(args, "--cache") {
        serve.cache_capacity = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--steps") {
        serve.steps = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--guidance") {
        serve.guidance_scale = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--max-worker-restarts") {
        serve.max_worker_restarts = v.parse()?;
    }
    // Admission control: every gate defaults off; setting a flag arms it.
    if let Some(v) = parse_flag(args, "--tenant-rate") {
        serve.admission.tenant_rate = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--tenant-burst") {
        serve.admission.tenant_burst = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--shed-queue-depth") {
        serve.admission.shed_queue_depth = v.parse()?;
    }
    if let Some(v) = parse_flag(args, "--shed-p95-ms") {
        serve.admission.shed_p95_us = v.parse::<u64>()?.saturating_mul(1000);
    }
    if args.iter().any(|a| a == "--stream") {
        serve.stream_previews = true;
    }
    let mut plan = FaultPlan::new();
    let mut armed = false;
    if let Some(list) = parse_flag(args, "--inject-panic-at") {
        for ordinal in list.split(',') {
            plan = plan.inject(ordinal.trim().parse()?, Fault::PanicRequest);
        }
        eprintln!("fault injection armed: worker panic on request(s) {list}");
        armed = true;
    }
    if let Some(list) = parse_flag(args, "--inject-replica-kill-at") {
        for ordinal in list.split(',') {
            plan = plan.inject_replica_kill(ordinal.trim().parse()?);
        }
        eprintln!("fault injection armed: replica kill on request(s) {list}");
        armed = true;
    }
    let faults = armed.then(|| std::sync::Arc::new(plan));
    let report = lint_serve(snapshot.config(), &serve);
    if !report.is_clean() {
        eprint!("{}", report.render());
        return Err("serving configuration failed the static lint".into());
    }
    eprintln!(
        "serving NDJSON on stdin → stdout ({} replica(s) × {} worker(s), max batch {}, queue {})",
        serve.replicas, serve.workers, serve.max_batch, serve.queue_capacity
    );
    let runtime = ServeRuntime::start_with_faults(snapshot, serve, faults);
    if let Some(registry) = registry {
        runtime.set_registry(registry);
        // Record the boot model as active so `models`/`swap` replies and
        // later hot-swaps line up with what is actually serving.
        if let Some(spec) = &model_spec {
            let (name, version) = parse_model_spec(spec)?;
            runtime.swap_from_registry(name, version)?;
        }
    }
    let stats = serve_ndjson(runtime, std::io::stdin().lock(), std::io::stdout())?;
    eprintln!(
        "drained: {} served, {} rejected ({} shed, {} cancelled), cache hit rate {:.0}%, \
         {} worker panic(s) caught, {} worker restart(s), \
         {} replica kill(s) / {} respawn(s), {} rerouted",
        stats.completed,
        stats.rejected_queue_full
            + stats.rejected_deadline
            + stats.rejected_shutting_down
            + stats.rejected_worker_failure
            + stats.rejected_worker_error
            + stats.rejected_overloaded
            + stats.rejected_cancelled,
        stats.rejected_overloaded,
        stats.rejected_cancelled,
        stats.cache_hit_rate * 100.0,
        stats.worker_panics,
        stats.worker_restarts,
        stats.replica_kills,
        stats.replica_respawns,
        stats.rerouted_requests
    );
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), Box<dyn Error>> {
    let configs: Vec<(String, PipelineConfig)> = if args.iter().any(|a| a == "--all") {
        vec![
            ("paper".to_string(), PipelineConfig::paper()),
            ("small".to_string(), PipelineConfig::small()),
            ("smoke".to_string(), PipelineConfig::smoke()),
        ]
    } else {
        let name = parse_flag(args, "--scale").unwrap_or_else(|| "smoke".to_string());
        let config = match name.as_str() {
            "paper" => PipelineConfig::paper(),
            "small" => PipelineConfig::small(),
            "smoke" => PipelineConfig::smoke(),
            other => {
                return Err(format!("unknown --scale '{other}' (expected smoke|small|paper)").into())
            }
        };
        vec![(name, config)]
    };
    let mut failed = false;
    for (name, config) in configs {
        // The serve lint is a strict superset of the pipeline lint: it
        // runs the same shape program and adds the batcher's contract.
        let report = lint_serve(&config, &ServeConfig::for_pipeline(&config));
        println!("== {name} ==");
        print!("{}", report.render());
        failed |= !report.is_clean();
    }
    if args.iter().any(|a| a == "--all") {
        // Config-independent: the checkpoint/persistence integrity
        // machinery (CRC32, manifest round-trip, version gating).
        let report = aerodiffusion::lint_checkpoint();
        println!("== checkpoint ==");
        print!("{}", report.render());
        failed |= !report.is_clean();
        // Source-level: all eight token-level passes over the workspace
        // tree (AD0110/AD0111 kernel discipline, AD0112 backend
        // dispatch, AD0113 deprecated condition API, AD0200 lock order,
        // AD0201 atomics, AD0202 determinism, AD0203 worker panics). A
        // no-op away from a checkout.
        let source_root = parse_flag(args, "--source-root").unwrap_or_else(|| ".".to_string());
        let report = aerodiffusion::lint_source_all(std::path::Path::new(&source_root));
        println!("== source ==");
        if let Some(path) = parse_flag(args, "--write-baseline") {
            let baseline = aerodiffusion::Baseline::from_report(&report);
            std::fs::write(&path, baseline.render())?;
            println!("wrote {} accepted finding(s) to {path}", baseline.len());
        } else if let Some(path) = parse_flag(args, "--baseline") {
            // Diff mode: accepted findings don't block, anything new does
            // — warnings included, which is what makes the warning-level
            // passes enforceable at all.
            let baseline = aerodiffusion::Baseline::parse(&std::fs::read_to_string(&path)?);
            let diff = baseline.diff(&report);
            print!("{}", diff.render());
            failed |= !diff.is_clean();
        } else {
            print!("{}", report.render());
            failed |= !report.is_clean();
        }
    }
    if failed {
        return Err("lint found errors".into());
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = args.first().ok_or("info requires a model directory")?;
    let meta = std::fs::read_to_string(std::path::Path::new(dir).join("meta.txt"))?;
    let vocab = std::fs::read_to_string(std::path::Path::new(dir).join("vocab.txt"))?;
    println!("pipeline at {dir}:");
    for line in meta.lines() {
        println!("  {line}");
    }
    println!("  vocabulary: {} entries", vocab.lines().count());
    for f in ["clip.aero", "vae.aero", "detector.aero", "condition.aero", "unet.aero"] {
        let size = std::fs::metadata(std::path::Path::new(dir).join(f))?.len();
        println!("  {f}: {size} bytes");
    }
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("export") => cmd_model_export(&args[1..]),
        Some("inspect") => cmd_model_inspect(&args[1..]),
        Some("list") => cmd_model_list(&args[1..]),
        _ => Err("usage: model <export|inspect|list> … (see top-level usage)".into()),
    }
}

/// Packs a persisted pipeline directory into one `.amdl` artifact,
/// optionally quantized, optionally published into a registry, with the
/// per-layer quantization-error report on stderr.
fn cmd_model_export(args: &[String]) -> Result<(), Box<dyn Error>> {
    apply_kernel_flags(args)?;
    let dir = args.first().ok_or("model export requires a model directory")?;
    let out = args.get(1).ok_or("model export requires an output .amdl path")?;
    let config = scale_config(args);
    let quant = if args.iter().any(|a| a == "--q8") { Quantization::Q8 } else { Quantization::F32 };
    let snapshot = AeroDiffusionPipeline::load(dir, config)?.snapshot();
    let report = write_snapshot(&snapshot, quant, std::path::Path::new(out))?;
    println!(
        "wrote {out}: {} bytes ({} quantization, {:.1}% of the dense f32 payload)",
        report.artifact_bytes,
        quant.tag(),
        report.size_ratio() * 100.0
    );
    if quant == Quantization::Q8 {
        eprintln!("per-layer quantization error (max_abs / mean_abs):");
        for layer in &report.layers {
            eprintln!(
                "  {:<16} {:>10} elems  {:.6} / {:.6}",
                layer.name, layer.numel, layer.max_abs_error, layer.mean_abs_error
            );
        }
        eprintln!(
            "overall: max_abs {:.6}, mean_abs {:.6}",
            report.max_abs_error, report.mean_abs_error
        );
    }
    if let Some(scenes) = parse_flag(args, "--quality-scenes") {
        let scenes: usize = scenes.parse()?;
        eprintln!("measuring q8 quality delta on {scenes} scenes…");
        let delta = aero_model::quality_delta(&snapshot, scenes, 17)?;
        println!(
            "quality delta (q8 - f32): FID {:+.4} ({:.4} → {:.4}), CLIP {:+.4} ({:.4} → {:.4})",
            delta.fid_delta(),
            delta.fid_f32,
            delta.fid_q8,
            delta.clip_delta(),
            delta.clip_f32,
            delta.clip_q8
        );
    }
    if let Some(registry_dir) = parse_flag(args, "--registry") {
        let name = parse_flag(args, "--name").ok_or("--registry requires --name")?;
        let registry = ModelRegistry::open(std::path::Path::new(&registry_dir))?;
        let entry = registry.publish(&name, &std::fs::read(out)?)?;
        println!("published {}@{} to {registry_dir} ({})", entry.name, entry.version, entry.file);
    }
    Ok(())
}

/// Verifies and prints one artifact: metadata section plus tensor table.
fn cmd_model_inspect(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args.first().ok_or("model inspect requires an artifact path")?;
    let artifact = ModelArtifact::read(std::path::Path::new(path))?;
    println!(
        "{path}: {} bytes, checksum verified, {}",
        artifact.file_len(),
        if artifact.is_mapped() { "memory-mapped" } else { "buffered read" }
    );
    println!("metadata:");
    for (key, value) in artifact.kv() {
        let shown = if value.len() > 64 {
            format!("{}… ({} bytes)", &value[..value.len().min(48)], value.len())
        } else {
            value.clone()
        };
        println!("  {key} = {}", shown.replace('\n', "\\n"));
    }
    println!("tensors:");
    for info in artifact.tensor_infos() {
        println!(
            "  {:<16} {:?} shape {:?} at +{} ({} bytes)",
            info.name, info.dtype, info.shape, info.offset, info.byte_len
        );
    }
    Ok(())
}

/// Prints a registry's index with per-entry integrity states.
fn cmd_model_list(args: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = args.first().ok_or("model list requires a registry directory")?;
    let registry = ModelRegistry::open(std::path::Path::new(dir))?;
    let entries = registry.entries()?;
    if entries.is_empty() {
        println!("registry {dir} is empty");
        return Ok(());
    }
    println!("registry {dir}:");
    for entry in &entries {
        let state = match registry.verify(entry)? {
            aero_model::IntegrityState::Verified => "verified".to_string(),
            aero_model::IntegrityState::Missing => "MISSING".to_string(),
            aero_model::IntegrityState::Corrupt { detail } => format!("CORRUPT ({detail})"),
        };
        println!(
            "  {}@{}  {}  {} bytes  crc {:08x}  {state}",
            entry.name, entry.version, entry.file, entry.len, entry.crc32
        );
    }
    Ok(())
}
