//! Workspace umbrella crate for the AeroDiffusion reproduction.
//!
//! This crate exists so that the repository root can host `examples/` and
//! cross-crate integration `tests/`; the actual functionality lives in the
//! `crates/` members. The most useful entry point is [`aerodiffusion`].

pub use aero_baselines as baselines;
pub use aero_diffusion as diffusion;
pub use aero_metrics as metrics;
pub use aero_nn as nn;
pub use aero_scene as scene;
pub use aero_tensor as tensor;
pub use aero_text as text;
pub use aero_vision as vision;
pub use aerodiffusion as core;
