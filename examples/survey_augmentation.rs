//! The paper's motivating scenario (Section I): an aerial surveillance
//! dataset only covers some (scene, condition) combinations — e.g.
//! "building A top-down", "building A oblique", "building B top-down" —
//! and conditional generation fills the missing cell
//! ("building B oblique") plus nighttime variants, rebalancing the
//! dataset.
//!
//! Run with: `cargo run --release --example survey_augmentation`

use aero_scene::{
    build_dataset, DatasetConfig, Rasterizer, SceneGeneratorConfig, TimeOfDay, Viewpoint,
};
use aerodiffusion::viewpoint::{night_synthesis, viewpoint_transition};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = PipelineConfig::smoke();
    let s = config.vision.image_size;

    // A sparse survey: a handful of scenes, all daytime, mostly top-down.
    let survey = build_dataset(&DatasetConfig {
        n_scenes: 8,
        image_size: s,
        seed: 17,
        generator: SceneGeneratorConfig {
            night_probability: 0.0,
            ..SceneGeneratorConfig::default()
        },
    });
    let day_count = survey.iter().filter(|i| i.spec.time == TimeOfDay::Day).count();
    println!(
        "survey dataset: {} scenes, {day_count} daytime / {} nighttime",
        survey.len(),
        survey.len() - day_count
    );

    println!("training AeroDiffusion on the sparse survey…");
    let pipeline = AeroDiffusionPipeline::fit(&survey, config, 23);

    let out = std::path::Path::new("target/survey_augmentation");
    std::fs::create_dir_all(out)?;
    let raster = Rasterizer::new(s, s);
    let mut rng = StdRng::seed_from_u64(3);
    let mut augmented = 0usize;

    for (i, item) in survey.iter().take(3).enumerate() {
        // Missing condition 1: oblique 45° view of the same scene.
        let oblique = Viewpoint { altitude: 0.5, pitch_deg: 45.0, heading_deg: 20.0 };
        let t = viewpoint_transition(&pipeline, item, oblique, &mut rng);
        t.image.save_ppm(out.join(format!("scene{i}_oblique_generated.ppm")))?;
        // ground-truth oblique render for visual comparison
        raster
            .render(&item.spec.with_viewpoint(oblique))
            .image
            .save_ppm(out.join(format!("scene{i}_oblique_truth.ppm")))?;
        augmented += 1;

        // Missing condition 2: the nighttime variant.
        let n = night_synthesis(&pipeline, item, &mut rng);
        n.image.save_ppm(out.join(format!("scene{i}_night_generated.ppm")))?;
        augmented += 1;
    }
    println!(
        "generated {augmented} augmentation images for missing (viewpoint, lighting) cells -> {}",
        out.display()
    );
    println!(
        "conditional interpolation turns a {}‑image survey into a balanced training set.",
        survey.len()
    );
    Ok(())
}
