//! Train and evaluate the YOLO-lite ROI detector on the synthetic aerial
//! dataset — the substrate behind the paper's region-level feature
//! augmentation. Prints a precision/recall operating curve.
//!
//! Run with: `cargo run --release --example detector_eval`

use aero_scene::{build_dataset, Annotation, DatasetConfig, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aero_vision::detector::YoloLite;
use aero_vision::eval::evaluate_detector;
use aero_vision::VisionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = VisionConfig::default();
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 24,
        image_size: cfg.image_size,
        seed: 5,
        generator: SceneGeneratorConfig { min_objects: 8, max_objects: 20, night_probability: 0.0 },
    });
    let samples: Vec<(Tensor, Vec<Annotation>)> =
        dataset.iter().map(|i| (i.rendered.image.to_tensor(), i.rendered.boxes.clone())).collect();
    let (train, eval) = samples.split_at(18);

    println!("training YOLO-lite on {} images…", train.len());
    let mut detector = YoloLite::new(cfg, &mut StdRng::seed_from_u64(1));
    let history = detector.train(train, 30, 6, 3e-3, &mut StdRng::seed_from_u64(2));
    println!(
        "detection loss: {:.4} -> {:.4}",
        history.first().copied().unwrap_or(0.0),
        history.last().copied().unwrap_or(0.0)
    );

    println!("\noperating curve on {} held-out images (IoU ≥ 0.3):", eval.len());
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>12}",
        "confidence", "precision", "recall", "F1", "dets/img"
    );
    for report in evaluate_detector(&detector, eval, &[0.3, 0.2, 0.1, 0.05, 0.02], 0.3) {
        println!(
            "{:>10.2} {:>10.2} {:>8.2} {:>8.2} {:>12.1}",
            report.confidence,
            report.precision,
            report.recall,
            report.f1(),
            report.mean_detections
        );
    }
    println!("\nThese detections are the regions of interest feeding AeroDiffusion's");
    println!("feature augmentation (Section IV-B of the paper).");
    Ok(())
}
