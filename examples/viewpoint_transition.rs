//! Viewpoint-transition synthesis (the Table III capability): take a
//! reference aerial scene and re-synthesize it from a new drone camera by
//! editing only the target description `G'`.
//!
//! Run with: `cargo run --release --example viewpoint_transition`

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig, Viewpoint};
use aerodiffusion::viewpoint::viewpoint_transition;
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = PipelineConfig::smoke();
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 8,
        image_size: config.vision.image_size,
        seed: 13,
        generator: SceneGeneratorConfig::default(),
    });
    println!("training AeroDiffusion (smoke scale)…");
    let pipeline = AeroDiffusionPipeline::fit(&dataset, config, 99);

    let item = &dataset.items[0];
    let target = Viewpoint { altitude: 0.4, pitch_deg: 50.0, heading_deg: 30.0 };
    let mut rng = StdRng::seed_from_u64(5);
    let result = viewpoint_transition(&pipeline, item, target, &mut rng);

    println!("\nG  (reference description):\n  {}\n", result.reference_description);
    println!("G' (viewpoint requirement):\n  {}\n", result.target_description);

    let out = std::path::Path::new("target/viewpoint_transition");
    std::fs::create_dir_all(out)?;
    item.rendered.image.save_ppm(out.join("reference.ppm"))?;
    result.image.save_ppm(out.join("transitioned.ppm"))?;
    println!("wrote reference.ppm and transitioned.ppm under {}", out.display());
    Ok(())
}
