//! Compare the simulated caption providers of Table II on one scene:
//! how much of the scene's ground truth survives into each caption.
//!
//! Run with: `cargo run --example caption_providers`

use aero_scene::{SceneGenerator, SceneGeneratorConfig};
use aero_text::coverage::keypoint_coverage;
use aero_text::llm::{LlmProvider, SimulatedLlm};
use aero_text::prompt::PromptTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let generator = SceneGenerator::new(SceneGeneratorConfig::default());
    let spec = generator.generate(&mut StdRng::seed_from_u64(11));
    println!(
        "scene: {} at {}, {} objects, viewpoint {}\n",
        spec.kind,
        spec.time.phrase(),
        spec.objects.len(),
        spec.viewpoint.phrase()
    );

    let prompt = PromptTemplate::keypoint_aware();
    for provider in LlmProvider::ALL {
        let llm = SimulatedLlm::new(provider);
        let caption = llm.describe(&spec, &prompt, &mut StdRng::seed_from_u64(3));
        let report = keypoint_coverage(&caption, &spec);
        println!("=== {} ===", provider.name());
        println!("{caption}");
        println!(
            "coverage: score {:.2} | time {} | viewpoint {} | class recall {:.0}% | precision {:.0}%\n",
            report.score(),
            report.mentions_time,
            report.mentions_viewpoint,
            100.0 * report.class_recall,
            100.0 * report.class_precision,
        );
    }
    Ok(())
}
