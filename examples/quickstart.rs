//! Quickstart: build a synthetic aerial dataset, train AeroDiffusion at
//! smoke scale, and generate one text-guided image.
//!
//! Run with: `cargo run --release --example quickstart`

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Build a paired text-aerial dataset (the VisDrone-DET stand-in).
    let config = PipelineConfig::smoke();
    let dataset = build_dataset(&DatasetConfig {
        n_scenes: 8,
        image_size: config.vision.image_size,
        seed: 7,
        generator: SceneGeneratorConfig::default(),
    });
    println!(
        "dataset: {} scenes, {}-{} objects each",
        dataset.len(),
        dataset.iter().map(|i| i.spec.objects.len()).min().unwrap_or(0),
        dataset.iter().map(|i| i.spec.objects.len()).max().unwrap_or(0),
    );

    // 2. Train the full pipeline: keypoint captions -> CLIP/VAE/YOLO
    //    substrates -> joint UNet + condition-network training.
    println!("training AeroDiffusion (smoke scale)…");
    let pipeline = AeroDiffusionPipeline::fit(&dataset, config, 42);

    // 3. Generate an aerial image guided by a keypoint-aware description.
    let mut rng = StdRng::seed_from_u64(1);
    let reference = &dataset.items[0];
    let caption = pipeline.caption_for(reference, &mut rng);
    println!("\nkeypoint-aware description:\n  {caption}\n");
    let image = pipeline.generate(reference, &mut rng);

    let out = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out)?;
    reference.rendered.image.save_ppm(out.join("reference.ppm"))?;
    image.save_ppm(out.join("generated.ppm"))?;
    println!(
        "wrote {}/reference.ppm and {}/generated.ppm ({}x{})",
        out.display(),
        out.display(),
        image.width(),
        image.height()
    );
    Ok(())
}
