//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`ProptestConfig::with_cases`], range and regex-string strategies, and
//! `prop::collection::vec`. Sampling is deterministic (seeded from the test
//! name) and there is no shrinking: a failing case reports its inputs so it
//! can be reproduced by hand.

use std::fmt::Debug;
use std::ops::Range;

/// Error type carried by `prop_assert!` failures inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator backing strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeds the generator from an arbitrary label (the test name), so each
    /// test explores a fixed, reproducible input sequence.
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Gen { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sample space");
        self.next_u64() % n
    }
}

/// A source of test-case values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value: Debug + Clone;
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (u128::from(gen.next_u64()) % span) as $t
            }
        }
    )*};
}
strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(gen.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
strategy_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + gen.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
strategy_for_float_range!(f32, f64);

/// Regex-subset string strategy: `&str` patterns like `"[a-z ]{0,300}"`.
///
/// Supports character classes (`[a-z0-9_]`), `.` (printable ASCII), literal
/// characters, and the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` — the
/// fragment of regex syntax proptest-style generators actually see in this
/// repository's tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        generate_from_pattern(self, gen)
    }
}

fn generate_from_pattern(pattern: &str, gen: &mut Gen) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // 1. parse one atom into its candidate alphabet
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(char::from).collect()
            }
            '\\' => {
                let c = *chars.get(i + 1).unwrap_or_else(|| panic!("dangling \\ in {pattern:?}"));
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
                    's' => vec![' ', '\t'],
                    other => vec![other],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // 2. parse an optional quantifier
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            if let Some((a, b)) = body.split_once(',') {
                (parse_count(a, pattern), parse_count(b, pattern))
            } else {
                let n = parse_count(&body, pattern);
                (n, n)
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        // 3. emit
        let count = lo + gen.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let pick = gen.below(alphabet.len() as u64) as usize;
            out.push(alphabet[pick]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (a, b) = (body[j], body[j + 2]);
            assert!(a <= b, "inverted class range in pattern {pattern:?}");
            for c in a..=b {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
    set
}

fn parse_count(s: &str, pattern: &str) -> usize {
    s.trim()
        .replace('_', "")
        .parse()
        .unwrap_or_else(|_| panic!("bad quantifier {s:?} in pattern {pattern:?}"))
}

pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Self::Value {
            let n = self.len.clone().generate(gen);
            (0..n).map(|_| self.element.generate(gen)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Gen, ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// input reporting) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Declares deterministic property tests.
///
/// Mirrors `proptest::proptest!`: an optional `#![proptest_config(..)]`
/// inner attribute followed by `#[test] fn name(arg in strategy, ...)`
/// items. Each test samples `config.cases` inputs and fails with the
/// offending inputs on the first violated `prop_assert!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut gen = $crate::Gen::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut gen);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {:#?}",
                        case + 1,
                        cfg.cases,
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shape() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..5, 0..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_meets_spec(v in shape()) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&d| (1..5).contains(&d)));
        }

        #[test]
        fn string_pattern_respected(s in "[a-z ]{0,30}", t in "[a-z]{2,8}") {
            prop_assert!(s.len() <= 30);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            prop_assert!((2..=8).contains(&t.len()));
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let mut gen = Gen::deterministic("failing");
            for _ in 0..4 {
                let n = (0usize..10).generate(&mut gen);
                let check = || -> Result<(), TestCaseError> {
                    prop_assert!(n > 100, "n too small: {}", n);
                    Ok(())
                };
                if let Err(e) = check() {
                    panic!("case failed: {e}");
                }
            }
        });
        assert!(result.is_err());
    }
}
