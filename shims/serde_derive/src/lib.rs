//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and scene types
//! but never round-trips them through a serde data format (persistence uses
//! a hand-rolled binary codec in `aero-nn`). The derives therefore expand to
//! nothing; the `serde` shim provides blanket impls so trait bounds keep
//! compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
