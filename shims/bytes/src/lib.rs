//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted slices —
//! the workspace only builds a buffer once and reads it back), and
//! [`Buf`]/[`BufMut`] cover exactly the little-endian accessors
//! `aero-nn::serialize` calls.

use std::ops::Deref;

/// Immutable byte buffer (Vec-backed; no zero-copy slicing).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    #[must_use]
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    #[must_use]
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the accumulated buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`, matching upstream `bytes`.
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"HDR!");
        buf.put_u32_le(7);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 12);
        cursor.advance(4);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }
}
