//! Offline stand-in for `serde`.
//!
//! No serde data format is used anywhere in the workspace (persistence goes
//! through `aero-nn`'s binary codec), so [`Serialize`] and [`Deserialize`]
//! are marker traits with blanket impls, and the derive macros (re-exported
//! from the `serde_derive` shim) expand to nothing.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
