//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `sample_size`, `Bencher::iter`) with a simple
//! median-of-samples wall-clock timer. No plots, no statistics beyond
//! median/min/max — enough to compare hot paths locally without network
//! access.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over `self.iters` iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_samples(name: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Warm up and calibrate an iteration count targeting ~20ms per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        samples.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<40} median {median:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({iters} iters/sample)");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_samples(name, self.sample_size, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { prefix: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// Named group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_samples(&format!("{}/{}", self.prefix, name), self.sample_size, routine);
        self
    }

    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
