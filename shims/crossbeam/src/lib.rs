//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Since Rust 1.63 the standard library's `std::thread::scope` provides the
//! same structured-concurrency guarantee, so the shim delegates to it. One
//! behavioural difference: a panicking worker aborts the process via the
//! std scope's join rather than surfacing as `Err` — callers in this
//! workspace immediately `.expect()` the result, so the observable outcome
//! (panic with a message) is identical.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawned
    /// closures receive a `&Scope` argument like crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure's `&Scope` argument allows
        /// nested spawns, as with crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads join before return.
    ///
    /// # Errors
    ///
    /// Kept for signature compatibility with crossbeam; this shim never
    /// returns `Err` (worker panics propagate as panics instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut slots = vec![0u32; 16];
        super::thread::scope(|scope| {
            for (i, chunk) in slots.chunks_mut(4).enumerate() {
                scope.spawn(move |_| {
                    for (j, s) in chunk.iter_mut().enumerate() {
                        *s = (i * 4 + j) as u32;
                    }
                });
            }
        })
        .expect("workers joined");
        assert_eq!(slots, (0..16).collect::<Vec<u32>>());
    }
}
