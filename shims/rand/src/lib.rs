//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: [`StdRng`] (xoshiro256++
//! seeded via SplitMix64), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods the repo actually calls (`gen`, `gen_range`,
//! `gen_bool`). Determinism is the contract: every test seeds explicitly
//! with `StdRng::seed_from_u64`, so no OS entropy source is provided.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from seeds (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable from a half-open or inclusive range
/// (subset of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)` if `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as u128) - (lo as u128) + u128::from(inclusive);
                assert!(span > 0, "gen_range called with empty range");
                lo + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range called with empty range");
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_range(lo, hi, true, rng)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1], got {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Statistically solid for test workloads and fully reproducible from a
    /// `u64` seed; not cryptographically secure (neither is upstream's).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint/resume support.
        ///
        /// Not part of upstream `rand`'s API: the shim exposes it so the
        /// training loop can persist the generator mid-run and restore it
        /// to a bit-identical stream. A restored generator continues the
        /// exact sequence the saved one would have produced.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state is xoshiro's fixed point and is remapped to a
        /// nonzero constant (the same guard `seed_from_u64` applies).
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
            // produce four zeros from one seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&y));
            let z: usize = rng.gen_range(2..=2);
            assert_eq!(z, 2);
        }
    }

    #[test]
    fn gen_unit_floats_cover_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "uniform samples should reach both tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn state_round_trip_continues_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..57 {
            rng.next_u64();
        }
        let mut restored = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_remapped_not_stuck() {
        // The all-zero state is xoshiro's fixed point (every output would
        // be 0); the remap must yield a working stream instead.
        let mut rng = StdRng::from_state([0, 0, 0, 0]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != draws[0]), "stream must not be constant");
        assert!(draws.iter().any(|&d| d != 0), "stream must not be all zeros");
    }
}
