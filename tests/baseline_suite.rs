//! Integration tests for the baseline models against the shared
//! substrates.

use aero_baselines::{all_baselines, BaselineConfig};
use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_text::llm::LlmProvider;
use aero_text::prompt::PromptTemplate;
use aerodiffusion::substrate::caption_dataset;
use aerodiffusion::{PipelineConfig, SubstrateBundle};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_baseline_fits_and_generates() {
    let cfg = PipelineConfig::smoke();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 5,
        image_size: cfg.vision.image_size,
        seed: 51,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 8, night_probability: 0.0 },
    });
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 1);
    let bundle = SubstrateBundle::train(&ds, &captions, &cfg, 2);

    let names: Vec<&str> =
        ["DDPM", "Stable Diffusion", "ARLDM", "Versatile Diffusion", "Make-a-Scene"].to_vec();
    let mut seen = Vec::new();
    for (i, mut model) in
        all_baselines(BaselineConfig::smoke(cfg.vision.image_size)).into_iter().enumerate()
    {
        model.fit(&ds, &bundle, 100 + i as u64);
        let img = model.generate(&ds.items[0], &bundle, &mut StdRng::seed_from_u64(3));
        assert_eq!(img.width(), cfg.vision.image_size, "{}", model.name());
        assert!(img.to_tensor().as_slice().iter().all(|v| v.is_finite()), "{}", model.name());
        seen.push(model.name().to_string());
    }
    assert_eq!(seen, names, "Table I row order");
}

#[test]
fn differently_seeded_baselines_generate_distinct_images() {
    let cfg = PipelineConfig::smoke();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: cfg.vision.image_size,
        seed: 52,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 8, night_probability: 0.0 },
    });
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 1);
    let bundle = SubstrateBundle::train(&ds, &captions, &cfg, 2);
    let mut models = all_baselines(BaselineConfig::smoke(cfg.vision.image_size));
    // two structurally different baselines with distinct seeds
    models[1].fit(&ds, &bundle, 7);
    models[2].fit(&ds, &bundle, 8);
    let a = models[1].generate(&ds.items[0], &bundle, &mut StdRng::seed_from_u64(9));
    let b = models[2].generate(&ds.items[0], &bundle, &mut StdRng::seed_from_u64(9));
    assert!(
        a.to_tensor().sub(&b.to_tensor()).abs().max() > 1e-6,
        "distinct models should not collapse to identical outputs"
    );
}
