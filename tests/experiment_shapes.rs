//! Shape checks on the experiment harness at smoke scale: the qualitative
//! claims that must hold at any scale.

use aero_bench::{run_fig1, run_fig3, ExperimentScale};

#[test]
fn fig1_complexity_gap_holds() {
    let r = run_fig1(ExperimentScale::Smoke, 1);
    assert!(r.aerial.min >= 20, "aerial min {}", r.aerial.min);
    assert!(r.aerial.max <= 90, "aerial max {}", r.aerial.max);
    assert!(r.classical.max <= 2, "classical max {}", r.classical.max);
    assert!(
        r.aerial.mean > 10.0 * r.classical.mean,
        "aerial {} vs classical {}",
        r.aerial.mean,
        r.classical.mean
    );
}

#[test]
fn fig3_keypoint_prompt_beats_traditional() {
    let r = run_fig3(3);
    assert!(
        r.keypoint_score > r.traditional_score,
        "keypoint {} vs traditional {}",
        r.keypoint_score,
        r.traditional_score
    );
    assert!(r.keypoint_caption.len() > r.traditional_caption.len());
    assert!(r.keypoint_prompt.contains("time of day"));
    assert_eq!(r.traditional_prompt, "Write a description for this image.");
}

#[test]
fn protocol_scoring_is_sound() {
    use aero_bench::Protocol;
    let p = Protocol::new(ExperimentScale::Smoke, 5);
    // generated == real must score (near) perfectly on all three metrics
    let perfect: Vec<_> = p.eval.iter().map(|i| i.rendered.image.clone()).collect();
    let m = p.score(&perfect);
    assert!(m.fid < 1e-2, "self-FID {}", m.fid);
    // the unbiased KID estimator is ≤ 0 for identical small sets
    assert!(m.kid <= 1e-3 && m.kid > -1.0, "self-KID {}", m.kid);
    // black frames must score far worse
    let s = p.eval.image_size;
    let black: Vec<_> = (0..p.eval.len()).map(|_| aero_scene::Image::new(s, s)).collect();
    let bad = p.score(&black);
    assert!(bad.fid > m.fid);
    assert!(bad.psnr < 30.0);
}
