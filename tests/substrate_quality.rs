//! Quality gates on the trained substrates: the components the paper
//! takes as pretrained checkpoints must actually learn their jobs on the
//! synthetic corpus.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aero_tensor::Tensor;
use aero_text::llm::LlmProvider;
use aero_text::prompt::PromptTemplate;
use aero_vision::eval::{clip_retrieval_at_1, evaluate_detector};
use aerodiffusion::substrate::caption_dataset;
use aerodiffusion::{PipelineConfig, SubstrateBundle};

fn trained_world() -> (aero_scene::AerialDataset, SubstrateBundle, PipelineConfig) {
    // more training than smoke so the quality gates are meaningful, and
    // 32-px geometry so objects cover more than a pixel — still seconds
    let mut cfg = PipelineConfig::smoke();
    cfg.vision = aero_vision::VisionConfig::default();
    cfg.clip_epochs = 12;
    cfg.vae_epochs = 40;
    cfg.detector_epochs = 40;
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 10,
        image_size: cfg.vision.image_size,
        seed: 71,
        generator: SceneGeneratorConfig { min_objects: 5, max_objects: 10, night_probability: 0.3 },
    });
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 72);
    let bundle = SubstrateBundle::train(&ds, &captions, &cfg, 73);
    (ds, bundle, cfg)
}

#[test]
fn clip_retrieval_beats_chance_on_real_pairs() {
    let (ds, bundle, _) = trained_world();
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 72);
    let imgs: Vec<Tensor> = ds.iter().map(|i| i.rendered.image.to_tensor()).collect();
    let refs: Vec<&Tensor> = imgs.iter().collect();
    let tokens: Vec<Vec<usize>> = captions.iter().map(|c| bundle.tokenizer.encode(c)).collect();
    let r1 = clip_retrieval_at_1(&bundle.clip, &Tensor::stack(&refs), &tokens);
    let chance = 1.0 / ds.len() as f32;
    assert!(r1 > chance, "R@1 {r1} must beat chance {chance}");
}

#[test]
fn vae_beats_mean_image_baseline() {
    let (ds, bundle, cfg) = trained_world();
    let s = cfg.vision.image_size;
    // mean image of the corpus
    let mut mean = Tensor::zeros(&[3, s, s]);
    for item in ds.iter() {
        mean = mean.add(&item.rendered.image.to_tensor());
    }
    let mean = mean.mul_scalar(1.0 / ds.len() as f32);
    let mut vae_mse = 0.0;
    let mut mean_mse = 0.0;
    for item in ds.iter() {
        let t = item.rendered.image.to_tensor();
        let batch = t.reshape(&[1, 3, s, s]);
        let recon = bundle.vae.reconstruct(&batch).reshape(&[3, s, s]);
        vae_mse += recon.sub(&t).powf(2.0).mean();
        mean_mse += mean.sub(&t).powf(2.0).mean();
    }
    assert!(
        vae_mse < mean_mse,
        "VAE reconstruction ({vae_mse}) must beat the constant mean image ({mean_mse})"
    );
}

#[test]
fn detector_finds_objects_with_nonzero_recall() {
    let (ds, bundle, _) = trained_world();
    let samples: Vec<(Tensor, Vec<aero_scene::Annotation>)> =
        ds.iter().map(|i| (i.rendered.image.to_tensor(), i.rendered.boxes.clone())).collect();
    let reports = evaluate_detector(&bundle.detector, &samples, &[0.02], 0.1);
    assert!(
        reports[0].recall > 0.0,
        "trained detector should recover some objects: {:?}",
        reports[0]
    );
    assert!(reports[0].mean_detections > 0.0);
}

#[test]
fn tokenizer_covers_caption_corpus() {
    let (ds, bundle, _) = trained_world();
    let captions =
        caption_dataset(&ds, LlmProvider::KeypointAware, &PromptTemplate::keypoint_aware(), 72);
    // every caption word must be in-vocabulary (no <unk> ids)
    for cap in &captions {
        let ids = bundle.tokenizer.encode(cap);
        let unk = ids.iter().filter(|&&i| i == 1).count();
        assert_eq!(unk, 0, "caption should be fully covered: {cap}");
    }
}
