//! Cross-crate integration tests: the full pipeline at smoke scale.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig, Viewpoint};
use aero_text::llm::LlmProvider;
use aerodiffusion::viewpoint::{night_synthesis, viewpoint_transition};
use aerodiffusion::{AblationVariant, AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_dataset(n: usize, seed: u64) -> aero_scene::AerialDataset {
    build_dataset(&DatasetConfig {
        n_scenes: n,
        image_size: PipelineConfig::smoke().vision.image_size,
        seed,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 9, night_probability: 0.25 },
    })
}

#[test]
fn full_pipeline_trains_generates_and_scores() {
    let ds = smoke_dataset(6, 1);
    let (train, eval) = ds.split(0.67);
    let pipeline = AeroDiffusionPipeline::fit(&train, PipelineConfig::smoke(), 2);
    let mut rng = StdRng::seed_from_u64(3);
    let images = pipeline.generate_eval(&eval, &mut rng);
    assert_eq!(images.len(), eval.len());
    for img in &images {
        let t = img.to_tensor();
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
    }
    // metric plumbing across metrics + scene + core
    let extractor = aero_metrics::FeatureExtractor::default();
    let real: Vec<_> = eval.iter().map(|i| i.rendered.image.to_tensor()).collect();
    let gen: Vec<_> = images.iter().map(aero_scene::Image::to_tensor).collect();
    let fid = aero_metrics::fid(&extractor, &real, &gen).expect("fid");
    assert!(fid.is_finite() && fid >= 0.0);
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let ds = smoke_dataset(5, 4);
    let a = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 9);
    let b = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 9);
    let img_a = a.generate(&ds.items[0], &mut StdRng::seed_from_u64(5));
    let img_b = b.generate(&ds.items[0], &mut StdRng::seed_from_u64(5));
    assert_eq!(img_a, img_b, "same seeds must give identical generations");
}

#[test]
fn ablation_variants_share_the_interface() {
    let ds = smoke_dataset(4, 6);
    for variant in [AblationVariant::BaseSd, AblationVariant::Full] {
        let pipeline = AeroDiffusionPipeline::fit_with_options(
            &ds,
            PipelineConfig::smoke(),
            LlmProvider::KeypointAware,
            variant,
            7,
        );
        let img = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(8));
        assert_eq!(img.width(), PipelineConfig::smoke().vision.image_size);
        assert_eq!(pipeline.variant(), variant);
    }
}

#[test]
fn viewpoint_and_night_modes_run_end_to_end() {
    let ds = smoke_dataset(5, 10);
    let pipeline = AeroDiffusionPipeline::fit(&ds, PipelineConfig::smoke(), 11);
    let mut rng = StdRng::seed_from_u64(12);
    let vp = Viewpoint { altitude: 0.45, pitch_deg: 48.0, heading_deg: 90.0 };
    let t = viewpoint_transition(&pipeline, &ds.items[0], vp, &mut rng);
    assert!(t.target_description.contains("low altitude"));
    let n = night_synthesis(&pipeline, &ds.items[1], &mut rng);
    assert!(n.description.contains("nighttime"));
    assert!(n.luminance >= 0.0 && n.luminance <= 1.0);
}

#[test]
fn caption_provider_plumbs_through_pipeline() {
    let ds = smoke_dataset(4, 13);
    let pipeline = AeroDiffusionPipeline::fit_with_options(
        &ds,
        PipelineConfig::smoke(),
        LlmProvider::BlipCaption,
        AblationVariant::Full,
        14,
    );
    assert_eq!(pipeline.provider(), LlmProvider::BlipCaption);
    let caption = pipeline.caption_for(&ds.items[0], &mut StdRng::seed_from_u64(0));
    // BLIP-style: a single sentence
    assert_eq!(caption.matches('.').count(), 1, "{caption}");
}
