//! Integration test: save/load of a trained pipeline preserves behaviour.

use aero_scene::{build_dataset, DatasetConfig, SceneGeneratorConfig};
use aerodiffusion::{AeroDiffusionPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn saved_pipeline_generates_identically_after_load() {
    let cfg = PipelineConfig::smoke();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 5,
        image_size: cfg.vision.image_size,
        seed: 61,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 8, night_probability: 0.2 },
    });
    let pipeline = AeroDiffusionPipeline::fit(&ds, cfg, 62);

    let dir = std::env::temp_dir().join("aero_pipeline_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    pipeline.save(&dir).expect("save");
    let loaded = AeroDiffusionPipeline::load(&dir, cfg).expect("load");

    assert_eq!(loaded.provider(), pipeline.provider());
    assert_eq!(loaded.variant(), pipeline.variant());
    let original = pipeline.generate(&ds.items[0], &mut StdRng::seed_from_u64(63));
    let restored = loaded.generate(&ds.items[0], &mut StdRng::seed_from_u64(63));
    assert_eq!(original, restored, "loaded pipeline must generate identically");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_rejects_wrong_config() {
    let cfg = PipelineConfig::smoke();
    let ds = build_dataset(&DatasetConfig {
        n_scenes: 4,
        image_size: cfg.vision.image_size,
        seed: 64,
        generator: SceneGeneratorConfig { min_objects: 4, max_objects: 8, night_probability: 0.0 },
    });
    let pipeline = AeroDiffusionPipeline::fit(&ds, cfg, 65);
    let dir = std::env::temp_dir().join("aero_pipeline_wrong_cfg");
    let _ = std::fs::remove_dir_all(&dir);
    pipeline.save(&dir).expect("save");
    let err = AeroDiffusionPipeline::load(&dir, PipelineConfig::small());
    assert!(err.is_err(), "mismatched config must be rejected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_rejects_missing_directory() {
    let missing = std::env::temp_dir().join("aero_pipeline_does_not_exist");
    assert!(AeroDiffusionPipeline::load(&missing, PipelineConfig::smoke()).is_err());
}
