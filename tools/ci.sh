#!/usr/bin/env bash
# Offline CI gate for the AeroDiffusion workspace.
#
# Mirrors exactly what a reviewer runs before merging:
#   1. rustfmt       — formatting must be canonical
#   2. clippy        — workspace lint policy ([workspace.lints] in Cargo.toml),
#                      warnings are errors
#   3. tests         — the full workspace test suite
#   4. static lint   — aero-analysis shape validation of every shipped
#                      pipeline preset plus the serving batcher contract
#                      (the `lint` CLI subcommand)
#   5. serve smoke   — two NDJSON requests piped through `serve --demo`,
#                      asserting image replies and the stats probe
#
# Everything runs with --offline: the build environment has no network and
# all dependencies are vendored shims (see shims/).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== static model lint (all shipped presets) =="
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- lint --all

echo "== serving smoke test (NDJSON over stdin/stdout) =="
# Two generate requests plus a stats probe piped through a demo server;
# assert two image replies and a stats line that counted both.
serve_out="$(printf '%s\n%s\n%s\n' \
  '{"type":"generate","id":"ci-a","prompt":"an aerial view of a park","seed":1}' \
  '{"type":"generate","id":"ci-b","prompt":"a parking lot at night","seed":2}' \
  '{"type":"stats"}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve --demo --scenes 3 --workers 1 --steps 4)"
echo "$serve_out" | head -c 400; echo
[ "$(echo "$serve_out" | grep -c '"type":"image"')" -eq 2 ] \
  || { echo "serve smoke: expected 2 image replies"; exit 1; }
echo "$serve_out" | grep -q '"type":"stats","completed":2' \
  || { echo "serve smoke: stats line missing or wrong count"; exit 1; }

echo "CI: all gates passed"
