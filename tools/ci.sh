#!/usr/bin/env bash
# Offline CI gate for the AeroDiffusion workspace.
#
# Mirrors exactly what a reviewer runs before merging:
#   1. rustfmt       — formatting must be canonical
#   2. clippy        — workspace lint policy ([workspace.lints] in Cargo.toml),
#                      warnings are errors
#   3. tests         — the full workspace test suite
#   4. static lint   — aero-analysis shape validation of every shipped
#                      pipeline preset (the `lint` CLI subcommand)
#
# Everything runs with --offline: the build environment has no network and
# all dependencies are vendored shims (see shims/).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== static model lint (all shipped presets) =="
cargo run --offline -q -p aerodiffusion --bin aerodiffusion_cli -- lint --all

echo "CI: all gates passed"
