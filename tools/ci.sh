#!/usr/bin/env bash
# Offline CI gate for the AeroDiffusion workspace.
#
# Mirrors exactly what a reviewer runs before merging:
#   1. rustfmt       — formatting must be canonical
#   2. clippy        — workspace lint policy ([workspace.lints] in Cargo.toml),
#                      warnings are errors
#   3. tests         — the full workspace test suite
#   4. static lint   — aero-analysis shape validation of every shipped
#                      pipeline preset plus the serving batcher contract,
#                      and the token-level source passes (AD01xx/AD02xx)
#                      gated against the committed diagnostics baseline:
#                      any finding not in tools/lint_baseline.txt fails
#                      (the `lint` CLI subcommand); plus a lock-order
#                      smoke that plants a deliberate AD0200 cycle in a
#                      temp workspace and asserts the analyzer trips
#   5. serve smoke   — two NDJSON requests piped through `serve --demo`,
#                      asserting image replies plus the stats and
#                      metrics probes
#   6. fault smokes  — a checkpointed training run killed mid-way via
#                      --max-steps and resumed to completion with a finite
#                      final loss, and a serve run with an injected
#                      per-request worker panic that still answers every
#                      request and restarts the worker
#   6b. fleet smokes — a 2-replica serve run with an injected replica-group
#                      kill must answer every request with bytes identical
#                      to a 1-replica unfaulted baseline; a tenant-bucket
#                      overload run must shed typed `overloaded` replies
#                      with a retry_after_ms hint and admit the retry after
#                      the bucket refills; a cancelled streaming request
#                      must resolve as `cancelled` (never an image) while
#                      the next request is still served; plus a
#                      threshold-free bench_serve liveness run
#                      (BENCH_SERVE_SMOKE=1)
#   7. thread smokes — the same sample rendered with --threads 1 and with
#                      AERO_THREADS=4 must be byte-identical (the sharded
#                      kernel layer's determinism contract, end to end
#                      through the full pipeline), plus a threshold-free
#                      bench_kernels liveness run (BENCH_KERNELS_SMOKE=1)
#                      that asserts bit-identity per workload and backend
#   7b. backend smoke — the same sample rendered under --backend reference
#                      and under AERO_BACKEND=blocked must be byte-identical
#                      (the ComputeBackend oracle-equivalence contract, end
#                      to end through the full pipeline; AD0112 keeps every
#                      caller on the dispatched path)
#   8. obs smokes    — the same sample rendered with and without --trace
#                      must be byte-identical (observation never perturbs
#                      results), and `profile` must print a span tree
#                      covering the DDIM denoise loop
#   8b. task smokes  — `sample --task inpaint` run twice with the same
#                      seed and mask must produce byte-identical images;
#                      a text-only request in the legacy wire schema and
#                      the same request folded under `task:{kind:"text"}`
#                      must serve byte-identical pixels; plus a
#                      threshold-free bench_tasks liveness run
#                      (BENCH_TASKS_SMOKE=1) asserting per-task
#                      determinism
#   9. model smokes  — the trained model exported to a single `.amdl`
#                      artifact, inspected (CRC verified), published into
#                      a registry, and served from it with a sample
#                      byte-identical to the directory loader's; a
#                      one-bit-flipped copy must be rejected with a typed
#                      corruption error; plus a bench_model liveness run
#                      (BENCH_MODEL_SMOKE=1) asserting q8 < f32 size and
#                      f32 round-trip losslessness
#
# Everything runs with --offline: the build environment has no network and
# all dependencies are vendored shims (see shims/).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== static model + source lint (baseline-gated) =="
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  lint --all --baseline tools/lint_baseline.txt

echo "== lock-order smoke: a planted AD0200 cycle must fail the gate =="
# Two functions taking the same two locks in opposite orders; the
# analyzer must refuse even though the baseline is supplied.
mkdir -p "$work/lockcycle/crates/demo/src"
cat > "$work/lockcycle/crates/demo/src/lib.rs" <<'EOF'
fn forward(s: &Shared) {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    a.feed(&b);
}

fn backward(s: &Shared) {
    let b = s.beta.lock().unwrap();
    let a = s.alpha.lock().unwrap();
    b.feed(&a);
}
EOF
if cycle_out="$(cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  lint --all --baseline tools/lint_baseline.txt \
  --source-root "$work/lockcycle" 2>&1)"; then
  echo "lock-order smoke: planted cycle was not rejected"; exit 1
fi
echo "$cycle_out" | grep -q 'AD0200' \
  || { echo "lock-order smoke: failure did not cite AD0200"; \
       echo "$cycle_out"; exit 1; }

echo "== serving smoke test (NDJSON over stdin/stdout) =="
# Two generate requests plus stats and metrics probes piped through a
# demo server; assert two image replies, a stats line that counted both,
# and a metrics line carrying the registry-backed serve counters.
serve_out="$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"generate","id":"ci-a","prompt":"an aerial view of a park","seed":1}' \
  '{"type":"generate","id":"ci-b","prompt":"a parking lot at night","seed":2}' \
  '{"type":"stats"}' \
  '{"type":"metrics"}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve --demo --scenes 3 --workers 1 --steps 4)"
echo "$serve_out" | head -c 400; echo
[ "$(echo "$serve_out" | grep -c '"type":"image"')" -eq 2 ] \
  || { echo "serve smoke: expected 2 image replies"; exit 1; }
echo "$serve_out" | grep -q '"type":"stats","completed":2' \
  || { echo "serve smoke: stats line missing or wrong count"; exit 1; }
echo "$serve_out" | grep -q '"type":"metrics"' \
  || { echo "serve smoke: metrics line missing"; exit 1; }
echo "$serve_out" | grep -q '"serve.completed":2' \
  || { echo "serve smoke: metrics line missing serve.completed counter"; exit 1; }

echo "== fault smoke: kill + resume a checkpointed training run =="
# Kill the joint stage after its first step (checkpoint every step; the
# smoke preset runs 2 joint steps total, so the resumed run still has
# real work left to do)…
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  train "$work/model" --scenes 4 --seed 3 \
  --checkpoint-dir "$work/ckpt" --checkpoint-every 1 --max-steps 1 \
  | tee "$work/train1.log"
grep -q "stopped at step 1" "$work/train1.log" \
  || { echo "fault smoke: expected the run to stop at --max-steps"; exit 1; }
# …then resume to completion and require a finite final loss.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  train "$work/model" --scenes 4 --seed 3 \
  --checkpoint-dir "$work/ckpt" --checkpoint-every 1 --resume \
  | tee "$work/train2.log"
grep -q "resumed from checkpoint step" "$work/train2.log" \
  || { echo "fault smoke: resume did not pick up a checkpoint"; exit 1; }
final_loss="$(sed -n 's/^final loss: \([0-9.eE+-]*\)$/\1/p' "$work/train2.log")"
case "$final_loss" in
  ''|*[Nn][Aa][Nn]*|*[Ii][Nn][Ff]*) echo "fault smoke: final loss not finite: '$final_loss'"; exit 1 ;;
esac
grep -q "saved trained pipeline" "$work/train2.log" \
  || { echo "fault smoke: resumed run did not complete and save"; exit 1; }

echo "== fault smoke: serve with an injected worker panic =="
fault_out="$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"generate","id":"ci-f0","prompt":"an aerial view of a park","seed":1}' \
  '{"type":"generate","id":"ci-f1","prompt":"a parking lot at night","seed":2}' \
  '{"type":"generate","id":"ci-f2","prompt":"a dense downtown block","seed":3}' \
  '{"type":"stats"}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve --demo --scenes 3 --workers 1 --steps 4 --inject-panic-at 1 \
      2>"$work/serve_fault.log")"
echo "$fault_out" | head -c 400; echo
# Every request gets exactly one reply: two images plus one typed error…
[ "$(echo "$fault_out" | grep -c '"type":"image"')" -eq 2 ] \
  || { echo "fault smoke: expected 2 image replies around the panic"; exit 1; }
echo "$fault_out" | grep -q '"reason":"worker_error"' \
  || { echo "fault smoke: panicked request must get a typed worker_error"; exit 1; }
# …and by drain time the watchdog must have replaced the suspect worker
# (the post-drain summary is authoritative; the inline stats probe can
# legitimately run before the respawn lands).
grep -Eq '[1-9][0-9]* worker restart' "$work/serve_fault.log" \
  || { echo "fault smoke: expected a nonzero worker restart count"; \
       cat "$work/serve_fault.log"; exit 1; }

echo "== fleet smoke: replica kill is byte-identical to the unfaulted baseline =="
# Three requests served by one unfaulted replica, then the same three by a
# two-replica fleet whose first popped batch kills its whole group: the
# survivors plus the respawned group must produce the exact same bytes.
fleet_reqs="$(printf '%s\n%s\n%s\n' \
  '{"type":"generate","id":"fl-0","prompt":"an aerial view of a park","seed":21}' \
  '{"type":"generate","id":"fl-1","prompt":"a parking lot at night","seed":22}' \
  '{"type":"generate","id":"fl-2","prompt":"a dense downtown block","seed":23}')"
pixels() { sed -n 's/.*"rgb8_b64":"\([^"]*\)".*/\1/p'; }
base_px="$(printf '%s\n' "$fleet_reqs" \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4 | pixels)"
kill_px="$(printf '%s\n' "$fleet_reqs" \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --replicas 2 --workers 1 --steps 4 \
      --inject-replica-kill-at 0 2>"$work/serve_kill.log" | pixels)"
[ "$(printf '%s\n' "$base_px" | wc -l)" -eq 3 ] \
  || { echo "fleet smoke: baseline did not serve 3 images"; exit 1; }
[ "$base_px" = "$kill_px" ] \
  || { echo "fleet smoke: replica kill changed output bytes"; exit 1; }
grep -Eq '[1-9][0-9]* replica kill' "$work/serve_kill.log" \
  || { echo "fleet smoke: expected a nonzero replica kill count"; \
       cat "$work/serve_kill.log"; exit 1; }

echo "== fleet smoke: tenant overload sheds typed and the retry succeeds =="
# Burst of 3 against a 2-token bucket refilling at 4/s: the third request
# is shed with a retry_after_ms hint; a retry after the bucket refills is
# admitted and served.
overload_out="$( { printf '%s\n%s\n%s\n' \
    '{"type":"generate","id":"ov-0","prompt":"a plaza","seed":1,"tenant":"ci"}' \
    '{"type":"generate","id":"ov-1","prompt":"a plaza","seed":2,"tenant":"ci"}' \
    '{"type":"generate","id":"ov-2","prompt":"a plaza","seed":3,"tenant":"ci"}'; \
    sleep 1; \
    printf '%s\n%s\n' \
    '{"type":"generate","id":"ov-retry","prompt":"a plaza","seed":3,"tenant":"ci"}' \
    '{"type":"stats"}'; } \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4 --tenant-rate 4 --tenant-burst 2)"
echo "$overload_out" | grep -q '"id":"ov-2","reason":"overloaded"' \
  || { echo "fleet smoke: over-budget request must shed typed overloaded"; exit 1; }
echo "$overload_out" | grep '"id":"ov-2"' | grep -q '"retry_after_ms":' \
  || { echo "fleet smoke: overloaded reply missing retry_after_ms hint"; exit 1; }
echo "$overload_out" | grep '"id":"ov-retry"' | grep -q '"type":"image"' \
  || { echo "fleet smoke: post-refill retry must be served"; exit 1; }
echo "$overload_out" | grep -q '"completed":3' \
  || { echo "fleet smoke: expected 3 completed after the shed"; exit 1; }

echo "== fleet smoke: a cancelled request never becomes an image =="
# The cancel control line lands while ci-c0 is queued or sampling; it must
# resolve as a typed `cancelled` reply and the next request still serves.
cancel_out="$(printf '%s\n%s\n%s\n%s\n' \
  '{"type":"generate","id":"ci-c0","prompt":"a stadium","seed":5,"steps":64,"stream":true}' \
  '{"type":"cancel","id":"ci-c0"}' \
  '{"type":"generate","id":"ci-c1","prompt":"a stadium","seed":6}' \
  '{"type":"stats"}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4)"
echo "$cancel_out" | grep -q '"id":"ci-c0","reason":"cancelled"' \
  || { echo "fleet smoke: cancelled request must get a typed cancelled reply"; exit 1; }
echo "$cancel_out" | grep '"id":"ci-c0"' | grep -q '"type":"image"' \
  && { echo "fleet smoke: cancelled request must not produce an image"; exit 1; }
echo "$cancel_out" | grep -q '"type":"cancel","id":"ci-c0","ok":true' \
  || { echo "fleet smoke: cancel line must be acknowledged"; exit 1; }
echo "$cancel_out" | grep '"id":"ci-c1"' | grep -q '"type":"image"' \
  || { echo "fleet smoke: request after a cancel must still be served"; exit 1; }
echo "$cancel_out" | grep -q '"completed":1' \
  || { echo "fleet smoke: expected exactly 1 completed around the cancel"; exit 1; }

echo "== fleet smoke: bench_serve liveness =="
BENCH_SERVE_SMOKE=1 cargo run --offline -q -p aero-bench --bin bench_serve

echo "== thread smoke: sample determinism across thread counts =="
# The model trained by the fault smoke is reused; one sample rendered
# under a pinned single-thread policy and one under a 4-thread policy
# (via the env knob, so both configuration paths are exercised) must
# produce byte-identical images.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/t1.ppm" --seed 11 --threads 1
AERO_THREADS=4 cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/t4.ppm" --seed 11
cmp "$work/t1.ppm" "$work/t4.ppm" \
  || { echo "thread smoke: 1-thread and 4-thread samples differ"; exit 1; }

echo "== backend smoke: sample determinism across compute backends =="
# Same model, same seed: the serial Reference oracle (via the CLI flag)
# and the cache-blocked Blocked backend (via the env knob, so both
# configuration paths are exercised) must produce byte-identical images —
# and both must match the earlier default-backend thread-smoke sample.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/bref.ppm" --seed 11 --threads 1 --backend reference
AERO_BACKEND=blocked cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/bblk.ppm" --seed 11 --threads 1
cmp "$work/bref.ppm" "$work/bblk.ppm" \
  || { echo "backend smoke: reference and blocked samples differ"; exit 1; }
cmp "$work/t1.ppm" "$work/bblk.ppm" \
  || { echo "backend smoke: blocked sample differs from the default-backend sample"; exit 1; }

echo "== thread smoke: bench_kernels liveness =="
BENCH_KERNELS_SMOKE=1 cargo run --offline -q -p aero-bench --bin bench_kernels

echo "== model smoke: export → inspect → reload → byte-identical sample =="
# Pack the fault-smoke model into a single f32 artifact, verify it loads
# (CRC + header decode via `inspect`), publish it into a registry, and
# require a sample served straight off the artifact to be byte-identical
# to the directory loader's.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  model export "$work/model" "$work/model.amdl" \
  --registry "$work/registry" --name smoke
inspect_out="$(cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  model inspect "$work/model.amdl")"
echo "$inspect_out" | grep -q 'checksum verified' \
  || { echo "model smoke: inspect did not verify the checksum"; exit 1; }
echo "$inspect_out" | grep -q 'unet\.' \
  || { echo "model smoke: inspect tensor table missing unet tensors"; exit 1; }
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  model list "$work/registry" | grep -q 'smoke@1 .*verified' \
  || { echo "model smoke: registry list missing a verified smoke@1"; exit 1; }
# Byte-compare: the NDJSON server booted from the registry artifact must
# produce the exact image the directory-loaded server produces (only the
# latency telemetry may differ between runs, so compare the pixels).
req='{"type":"generate","id":"ci-m","prompt":"an aerial view of a park","seed":41}'
pixels() { sed -n 's/.*"rgb8_b64":"\([^"]*\)".*/\1/p'; }
dir_img="$(printf '%s\n' "$req" \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4 | pixels)"
amdl_img="$(printf '%s\n' "$req" \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve --workers 1 --steps 4 --registry "$work/registry" --model smoke@1 \
  | pixels)"
[ -n "$dir_img" ] && [ "$dir_img" = "$amdl_img" ] \
  || { echo "model smoke: artifact-served sample differs from directory-served"; exit 1; }

echo "== model smoke: a corrupt artifact is rejected typed =="
cp "$work/model.amdl" "$work/model-corrupt.amdl"
# Flip one bit in the middle of the payload; the CRC gate must refuse
# before any tensor is decoded.
size="$(wc -c < "$work/model-corrupt.amdl")"
mid="$((size / 2))"
byte="$(od -An -tu1 -j "$mid" -N1 "$work/model-corrupt.amdl" | tr -d ' ')"
printf "$(printf '\\%03o' "$((byte ^ 1))")" \
  | dd of="$work/model-corrupt.amdl" bs=1 seek="$mid" count=1 conv=notrunc status=none
if corrupt_out="$(cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  model inspect "$work/model-corrupt.amdl" 2>&1)"; then
  echo "model smoke: corrupt artifact was not rejected"; exit 1
fi
echo "$corrupt_out" | grep -qi 'corrupt' \
  || { echo "model smoke: corrupt-artifact error was not typed"; \
       echo "$corrupt_out"; exit 1; }

echo "== model smoke: bench_model liveness =="
(cd "$work" && BENCH_MODEL_SMOKE=1 cargo run --offline -q \
  --manifest-path "$OLDPWD/Cargo.toml" -p aero-bench --bin bench_model)

echo "== obs smoke: tracing never perturbs sample output =="
# Same model, same seed, tracing on vs off: the images must be
# byte-identical and the trace must actually contain spans.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/traced.ppm" --seed 11 --trace "$work/trace.ndjson"
cmp "$work/t1.ppm" "$work/traced.ppm" \
  || { echo "obs smoke: traced and untraced samples differ"; exit 1; }
grep -q '"span":"pipeline.sample_latents/sampler.ddim/unet.denoise_step"' "$work/trace.ndjson" \
  || { echo "obs smoke: trace NDJSON missing the denoise-step span"; exit 1; }
grep -q '"metric":"tensor.matmul.calls"' "$work/trace.ndjson" \
  || { echo "obs smoke: trace NDJSON missing kernel metrics"; exit 1; }

echo "== task smoke: inpaint determinism (same seed + mask → identical bytes) =="
# Two CLI inpaint runs with the same seed, source, and keypoint box must
# be byte-identical; the view task must also render at native resolution.
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/inp1.ppm" --seed 13 --task inpaint \
  --box car,4,4,11,10 --prompt "a car at the center"
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/inp2.ppm" --seed 13 --task inpaint \
  --box car,4,4,11,10 --prompt "a car at the center"
cmp "$work/inp1.ppm" "$work/inp2.ppm" \
  || { echo "task smoke: same-seed inpaint runs differ"; exit 1; }
cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  sample "$work/model" "$work/view.ppm" --seed 13 --task view \
  --target-view 0.6,60,30 | grep -q 'wrote' \
  || { echo "task smoke: view translation sample failed"; exit 1; }

echo "== task smoke: task:{kind:text} wire form is byte-identical to the legacy schema =="
# The unified request schema must be a pure superset: a text request in
# the pre-task wire form and the same request folded under a task object
# must produce the exact same pixels.
pixels() { sed -n 's/.*"rgb8_b64":"\([^"]*\)".*/\1/p'; }
legacy_px="$(printf '%s\n' \
  '{"type":"generate","id":"sc-old","prompt":"an aerial view of a park","seed":51}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4 | pixels)"
task_px="$(printf '%s\n' \
  '{"type":"generate","id":"sc-new","seed":51,"task":{"kind":"text","prompt":"an aerial view of a park"}}' \
  | cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
      serve "$work/model" --workers 1 --steps 4 | pixels)"
[ -n "$legacy_px" ] && [ "$legacy_px" = "$task_px" ] \
  || { echo "task smoke: task-folded text request differs from the legacy schema"; exit 1; }

echo "== task smoke: bench_tasks liveness =="
(cd "$work" && BENCH_TASKS_SMOKE=1 cargo run --offline -q \
  --manifest-path "$OLDPWD/Cargo.toml" -p aero-bench --bin bench_tasks)

echo "== obs smoke: profile prints a span tree =="
profile_out="$(cargo run --offline -q -p aerodiffusion-suite --bin aerodiffusion_cli -- \
  profile "$work/model" --seed 11)"
echo "$profile_out" | head -c 600; echo
echo "$profile_out" | grep -q 'unet.denoise_step ×' \
  || { echo "obs smoke: profile output missing the aggregated denoise line"; exit 1; }
echo "$profile_out" | grep -q 'tensor.dispatch' \
  || { echo "obs smoke: profile output missing the metrics table"; exit 1; }

echo "CI: all gates passed"
